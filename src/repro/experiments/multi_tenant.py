"""Multi-tenant sweep: offered load x scheduler policy x chaos.

The paper benchmarks one job at a time; production Hadoop clusters run
*queues* of them.  This sweep drives seeded open-loop arrival streams —
a batch tenant (Poisson Hadoop traffic), an interactive tenant (diurnal,
latency-sensitive), and a science tenant (bursty, part MPI-D gangs) —
through :class:`~repro.cluster.engine.MultiTenantEngine` on one shared
cluster, and asks how each scheduling policy holds up as offered load
climbs past capacity:

* **load** scales every tenant's arrival rate (2.0 = roughly twice what
  the cluster can absorb — the overload regime where admission control
  and fair-share matter);
* **policy** is ``fair`` / ``capacity`` / ``fifo`` (see
  ``docs/SCHEDULER.md``);
* **chaos** optionally overlays the PR-1/3 style fault plan (two node
  crashes plus a straggler) on top of the overload, so the per-tenant
  SLO numbers are measured while the cluster is *both* saturated and
  breaking.

Per (load, policy, chaos, seed) cell the engine reports per-tenant SLOs:
p50/p95/p99 job latency and queue wait, shed/failed/preempted counts,
and slot-second utilization.  ``--trace-out`` additionally records one
fully observed chaos-under-load run for the replay dashboard.
"""

from __future__ import annotations

import argparse
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.cluster import (
    MultiTenantEngine,
    QueueConfig,
    SchedulerConfig,
    TenantSpec,
)
from repro.experiments.reporting import Table, banner
from repro.hadoop.config import HadoopConfig
from repro.simnet.faults import FaultPlan, NodeCrash, Straggler

DEFAULT_SEEDS = (2011, 2012, 2013)
DEFAULT_LOADS = (0.5, 1.0, 2.0)
DEFAULT_POLICIES = ("fair", "capacity", "fifo")
DEFAULT_HORIZON = 1800.0

#: Base (load = 1.0) arrival rates, jobs per second per tenant.  Tuned so
#: the default cluster sits near full utilization at 1.0: doubling them
#: is genuine overload — queues grow open-loop and shedding kicks in.
BASE_RATES = {"batch": 0.035, "interactive": 0.055, "science": 0.015}


def make_tenants(load: float) -> list[TenantSpec]:
    """The three-tenant traffic mix at an offered-load multiplier."""
    return [
        TenantSpec(
            name="batch",
            rate=BASE_RATES["batch"] * load,
            profile="poisson",
            workloads=("javaSort", "streamSort", "monsterQuery"),
            min_input_bytes=256 * 2**20,
            max_input_bytes=2 * 2**30,
        ),
        TenantSpec(
            name="interactive",
            rate=BASE_RATES["interactive"] * load,
            profile="diurnal",
            workloads=("webdataScan", "combiner"),
            max_input_bytes=256 * 2**20,
        ),
        TenantSpec(
            name="science",
            rate=BASE_RATES["science"] * load,
            profile="bursty",
            runtime="mixed",
            mpid_fraction=0.5,
            workloads=("javaSort", "webdataSort"),
            min_input_bytes=256 * 2**20,
            max_input_bytes=2**30,
        ),
    ]


def make_queues() -> list[QueueConfig]:
    """Capacity split matching the tenants' importance: interactive gets
    the biggest guaranteed share and the shortest queue (it would rather
    shed than wait), batch gets the deepest backlog."""
    return [
        QueueConfig(name="batch", weight=1.0, capacity=0.3, max_queued=64),
        QueueConfig(
            name="interactive", weight=2.0, capacity=0.45, max_queued=8
        ),
        QueueConfig(name="science", weight=1.0, capacity=0.25, max_queued=16),
    ]


def chaos_plan(seed: int) -> FaultPlan:
    """The PR-1/3 style chaos overlay: a transient crash early, a second
    crash mid-run, and a slow node through the middle of the horizon."""
    return FaultPlan(
        specs=(
            NodeCrash(node=3, at=200.0, restart_after=150.0),
            NodeCrash(node=5, at=600.0, restart_after=240.0),
            Straggler(node=2, at=300.0, factor=4.0, duration=400.0),
        ),
        seed=seed,
    )


@dataclass
class MultiTenantResult:
    """The full sweep: one engine report per cell per seed."""

    loads: tuple[float, ...]
    policies: tuple[str, ...]
    seeds: tuple[int, ...]
    horizon: float
    #: cells[(load, policy, chaos)] -> {seed: engine report dict}
    cells: dict = field(default_factory=dict)

    def reports(self, load: float, policy: str, chaos: bool) -> dict:
        return self.cells[(load, policy, chaos)]


def run(
    loads=DEFAULT_LOADS,
    policies=DEFAULT_POLICIES,
    seeds=DEFAULT_SEEDS,
    horizon: float = DEFAULT_HORIZON,
    chaos=(False, True),
) -> MultiTenantResult:
    """Execute the whole sweep (pure function of its arguments)."""
    result = MultiTenantResult(
        loads=tuple(loads),
        policies=tuple(policies),
        seeds=tuple(seeds),
        horizon=horizon,
    )
    for load in result.loads:
        for policy in result.policies:
            for with_chaos in chaos:
                cell = {}
                for seed in result.seeds:
                    engine = MultiTenantEngine(
                        make_tenants(load),
                        scheduler=SchedulerConfig(policy=policy),
                        queues=make_queues(),
                        hadoop_config=HadoopConfig(map_slots=4, reduce_slots=4),
                        fault_plan=chaos_plan(seed) if with_chaos else None,
                        seed=seed,
                        horizon=horizon,
                    )
                    cell[seed] = engine.run()
                result.cells[(load, policy, with_chaos)] = cell
    return result


def to_rows(result: MultiTenantResult) -> tuple[list[str], list[list]]:
    """One CSV row per (cell, seed, tenant) with the full SLO readout."""
    header = [
        "load",
        "policy",
        "chaos",
        "seed",
        "tenant",
        "queue",
        "submitted",
        "completed",
        "failed",
        "shed",
        "unfinished",
        "latency_p50_s",
        "latency_p95_s",
        "latency_p99_s",
        "queue_wait_p50_s",
        "queue_wait_p95_s",
        "queue_wait_p99_s",
        "maps_preempted",
        "reduces_preempted",
        "slot_seconds",
        "utilization",
        "makespan_s",
    ]
    rows: list[list] = []
    for (load, policy, chaos), per_seed in sorted(
        result.cells.items(), key=lambda kv: (kv[0][0], kv[0][1], kv[0][2])
    ):
        for seed in result.seeds:
            report = per_seed[seed]
            for tenant, slo in sorted(report["tenants"].items()):
                rows.append(
                    [
                        load,
                        policy,
                        int(chaos),
                        seed,
                        tenant,
                        slo["queue"],
                        slo["submitted"],
                        slo["completed"],
                        slo["failed"],
                        slo["shed"],
                        slo["unfinished"],
                        slo["latency_p50"],
                        slo["latency_p95"],
                        slo["latency_p99"],
                        slo["queue_wait_p50"],
                        slo["queue_wait_p95"],
                        slo["queue_wait_p99"],
                        slo["maps_preempted"],
                        slo["reduces_preempted"],
                        slo["slot_seconds"],
                        slo["utilization"],
                        report["makespan"],
                    ]
                )
    return header, rows


def to_json(result: MultiTenantResult) -> dict:
    """The sweep with every per-cell engine report intact."""
    return {
        "experiment": "multi_tenant",
        "loads": list(result.loads),
        "policies": list(result.policies),
        "seeds": list(result.seeds),
        "horizon": result.horizon,
        "cells": {
            f"{load:g}x-{policy}-{'chaos' if chaos else 'clean'}": {
                str(seed): report for seed, report in per_seed.items()
            }
            for (load, policy, chaos), per_seed in sorted(
                result.cells.items(),
                key=lambda kv: (kv[0][0], kv[0][1], kv[0][2]),
            )
        },
    }


def format_report(result: MultiTenantResult) -> str:
    """Terminal report: one table per (load, chaos) comparing policies."""
    sections = [banner("Multi-tenant scheduling under load (and chaos)")]
    for load in result.loads:
        for chaos in sorted({k[2] for k in result.cells}):
            title = (
                f"offered load {load:g}x"
                + (" + chaos (2 crashes, 1 straggler)" if chaos else "")
            )
            table = Table(
                headers=(
                    "policy",
                    "tenant",
                    "jobs",
                    "done",
                    "shed",
                    "p50 lat",
                    "p95 lat",
                    "p95 wait",
                    "preempt",
                    "util",
                ),
                title=title,
            )
            for policy in result.policies:
                if (load, policy, chaos) not in result.cells:
                    continue
                per_seed = result.cells[(load, policy, chaos)]
                report = per_seed[result.seeds[0]]
                for tenant, slo in sorted(report["tenants"].items()):
                    table.add_row(
                        policy,
                        tenant,
                        slo["submitted"],
                        slo["completed"],
                        slo["shed"],
                        slo["latency_p50"],
                        slo["latency_p95"],
                        slo["queue_wait_p95"],
                        slo["maps_preempted"] + slo["reduces_preempted"],
                        slo["utilization"],
                    )
            sections.append(table.render())
    sections.append(
        "Open-loop arrivals do not back off: past 1x the backlog grows "
        "until admission control sheds deterministically.  fair/capacity "
        "keep the interactive tenant's p95 flat by preempting batch maps; "
        "fifo lets one tenant's burst head-of-line block everyone."
    )
    return "\n\n".join(sections)


def export(result: MultiTenantResult, out_dir: Path) -> list[Path]:
    """Write the CSV + JSON artifacts into ``out_dir``."""
    import csv

    out_dir.mkdir(parents=True, exist_ok=True)
    csv_path = out_dir / "multi_tenant.csv"
    header, rows = to_rows(result)
    with csv_path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(header)
        writer.writerows(rows)
    json_path = out_dir / "multi_tenant.json"
    with json_path.open("w") as fh:
        json.dump(to_json(result), fh, indent=2, sort_keys=True)
        fh.write("\n")
    return [csv_path, json_path]


def write_traced_run(
    trace_out,
    load: float = 2.0,
    policy: str = "fair",
    seed: int = 2011,
    horizon: float = 900.0,
):
    """One fully observed chaos-under-load run; writes trace + manifest.

    The trace shows every tenant's queue/dispatch/preempt spans on their
    own tracks next to the per-job map/shuffle work — the whole cluster's
    story under overload and faults, in Perfetto or the dashboard.
    """
    import time as _time

    from repro.obs import build_manifest, write_trace

    engine = MultiTenantEngine(
        make_tenants(load),
        scheduler=SchedulerConfig(policy=policy),
        queues=make_queues(),
        hadoop_config=HadoopConfig(map_slots=4, reduce_slots=4),
        fault_plan=chaos_plan(seed),
        seed=seed,
        horizon=horizon,
        observe=True,
    )
    t0 = _time.perf_counter()
    report = engine.run()
    observers = [(f"tenants-{load:g}x-{policy}", engine.sim.obs)]
    manifest = build_manifest(
        experiment="multi_tenant",
        config={
            "load": load,
            "policy": policy,
            "horizon": horizon,
            "chaos": True,
        },
        seed=seed,
        observers=observers,
        wall_seconds=_time.perf_counter() - t0,
        sim_elapsed={"makespan": report["makespan"]},
    )
    write_trace(observers, trace_out, manifest=manifest)
    manifest.write(Path(f"{trace_out}.manifest.json"))
    return report


def _parse_floats(text: str) -> tuple[float, ...]:
    return tuple(float(tok) for tok in text.split(",") if tok.strip())


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--seeds",
        type=str,
        default=None,
        help="comma-separated arrival/placement seeds (default 2011,2012,2013)",
    )
    parser.add_argument(
        "--loads",
        type=str,
        default=None,
        help="comma-separated offered-load multipliers (default 0.5,1,2)",
    )
    parser.add_argument(
        "--policies",
        type=str,
        default=None,
        help="comma-separated scheduler policies (default fair,capacity,fifo)",
    )
    parser.add_argument(
        "--horizon", type=float, default=DEFAULT_HORIZON,
        help="arrival horizon, simulated seconds",
    )
    parser.add_argument(
        "--no-chaos", action="store_true",
        help="skip the fault-plan overlay cells",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="one seed, loads 1x/2x, fair only, short horizon (CI smoke)",
    )
    parser.add_argument(
        "--out", type=Path, default=None,
        help="also write multi_tenant.csv / multi_tenant.json here",
    )
    parser.add_argument(
        "--trace-out",
        type=str,
        default=None,
        help="also record one observed 2x-overload chaos run; "
        "write Perfetto JSON here",
    )
    args = parser.parse_args(argv)
    seeds = (
        tuple(int(t) for t in args.seeds.split(",") if t.strip())
        if args.seeds
        else DEFAULT_SEEDS
    )
    loads = _parse_floats(args.loads) if args.loads else DEFAULT_LOADS
    policies = (
        tuple(t.strip() for t in args.policies.split(",") if t.strip())
        if args.policies
        else DEFAULT_POLICIES
    )
    horizon = args.horizon
    chaos = (False,) if args.no_chaos else (False, True)
    if args.quick:
        seeds = seeds[:1]
        loads = (1.0, 2.0)
        policies = ("fair",)
        horizon = min(horizon, 600.0)
        chaos = (False, True) if not args.no_chaos else (False,)
    result = run(
        loads=loads, policies=policies, seeds=seeds, horizon=horizon,
        chaos=chaos,
    )
    print(format_report(result))
    if args.out is not None:
        for path in export(result, args.out):
            print(f"wrote {path}")
    if args.trace_out is not None:
        write_traced_run(args.trace_out)
        print(f"wrote {args.trace_out} (+ {args.trace_out}.manifest.json)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
