"""Figure 6: WordCount — ordinary Hadoop vs the MPI-D simulation system.

The paper's configuration: 8 nodes (7 workers), 7/7 concurrent
map/reduce slots on Hadoop; on the MPI-D side 49 mapper processes, 1
reducer, 1 master.  Input from 1 GB to 100 GB.  The headline: MPI-D
reduces execution time to 8% / 48% / 56% of Hadoop at 1 / 10 / 100 GB.

Run: ``python -m repro.experiments.fig6_wordcount [--full]
[--trace-out trace.json]`` — the latter re-runs the smallest size with
the observer attached and writes a Perfetto-loadable trace plus a
``<trace-out>.manifest.json`` sidecar.
"""

from __future__ import annotations

import argparse
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.experiments import paper
from repro.experiments.reporting import Table, banner, compare_to_paper
from repro.hadoop import HadoopConfig, JobSpec, WORDCOUNT_PROFILE
from repro.hadoop.simulation import HadoopSimulation
from repro.mrmpi import MrMpiConfig
from repro.mrmpi.simulator import MrMpiSimulation
from repro.obs import build_manifest, write_trace
from repro.util.units import GiB

DEFAULT_SIZES_GB = (1, 4, 10)
FULL_SIZES_GB = (1, 10, 100)


@dataclass
class Fig6Result:
    """size (GiB) -> (hadoop seconds, mpid seconds)."""

    sizes_gb: tuple[int, ...]
    hadoop: dict[int, float] = field(default_factory=dict)
    mpid: dict[int, float] = field(default_factory=dict)
    #: Full per-task phase records (``JobMetrics.to_dict()`` /
    #: ``MrMpiMetrics.to_dict()``) per size — the JSON export's payload.
    hadoop_metrics: dict[int, dict] = field(default_factory=dict)
    mpid_metrics: dict[int, dict] = field(default_factory=dict)
    #: ``[(name, Observer), ...]`` when the run was observed, else empty.
    traces: list = field(default_factory=list)

    def ratio(self, gb: int) -> float:
        return self.mpid[gb] / self.hadoop[gb]


def _spec(gb: int) -> JobSpec:
    return JobSpec(
        name=f"wordcount-{gb}g",
        input_bytes=gb * GiB,
        profile=WORDCOUNT_PROFILE,
        num_reduce_tasks=1,
    )


def run(
    sizes_gb: tuple[int, ...] = DEFAULT_SIZES_GB,
    seed: int = 2011,
    observe: bool = False,
) -> Fig6Result:
    hadoop_cfg = HadoopConfig(map_slots=7, reduce_slots=7)
    mpid_cfg = MrMpiConfig(num_mappers=49, num_reducers=1)
    result = Fig6Result(sizes_gb=tuple(sizes_gb))
    for gb in sizes_gb:
        hsim = HadoopSimulation(
            spec=_spec(gb), config=hadoop_cfg, seed=seed, observe=observe
        )
        hm = hsim.run()
        result.hadoop[gb] = hm.elapsed
        result.hadoop_metrics[gb] = hm.to_dict()
        msim = MrMpiSimulation(spec=_spec(gb), config=mpid_cfg, observe=observe)
        mm = msim.run()
        result.mpid[gb] = mm.elapsed
        result.mpid_metrics[gb] = mm.to_dict()
        if observe:
            result.traces.append((f"hadoop-{gb}g", hsim.obs))
            result.traces.append((f"mpid-{gb}g", msim.obs))
    return result


def format_report(result: Fig6Result) -> str:
    table = Table(
        headers=("input", "Hadoop (s)", "MPI-D system (s)", "MPI-D/Hadoop"),
        title="WordCount execution time",
    )
    for gb in result.sizes_gb:
        table.add_row(
            f"{gb} GB",
            result.hadoop[gb],
            result.mpid[gb],
            f"{result.ratio(gb) * 100:.0f}%",
        )
    comparisons = []
    for gb in result.sizes_gb:
        published = paper.FIG6_RATIO.get(gb)
        comparisons.append(
            (f"MPI-D/Hadoop ratio @ {gb} GB", result.ratio(gb), published)
        )
        if gb in paper.FIG6_HADOOP_S:
            comparisons.append(
                (f"Hadoop time @ {gb} GB (s)", result.hadoop[gb], paper.FIG6_HADOOP_S[gb])
            )
        if gb in paper.FIG6_MPID_S:
            comparisons.append(
                (f"MPI-D time @ {gb} GB (s)", result.mpid[gb], paper.FIG6_MPID_S[gb])
            )
    biggest = max(result.sizes_gb)
    headline = (
        f"reduction at {biggest} GB: {(1 - result.ratio(biggest)) * 100:.0f}% "
        f"(paper: {paper.FIG6_HEADLINE_REDUCTION_AT_100GB * 100:.0f}% at 100 GB)"
    )
    return "\n\n".join(
        [
            banner("Figure 6: WordCount, Hadoop vs MPI-D simulation system"),
            table.render(),
            compare_to_paper(comparisons),
            headline,
        ]
    )


def write_traced_run(
    trace_out: Path, sizes_gb: tuple[int, ...], seed: int = 2011
) -> Fig6Result:
    """One observed run of the smallest size; writes trace + manifest."""
    gb = min(sizes_gb)
    t0 = time.perf_counter()
    result = run(sizes_gb=(gb,), seed=seed, observe=True)
    manifest = build_manifest(
        experiment="fig6_wordcount",
        config={"sizes_gb": [gb], "seed": seed},
        seed=seed,
        observers=result.traces,
        wall_seconds=time.perf_counter() - t0,
        sim_elapsed={"hadoop": result.hadoop[gb], "mpid": result.mpid[gb]},
    )
    write_trace(result.traces, trace_out, manifest=manifest)
    manifest.write(Path(f"{trace_out}.manifest.json"))
    return result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full", action="store_true", help="run the paper's 1/10/100 GB points"
    )
    parser.add_argument(
        "--trace-out",
        type=Path,
        default=None,
        help="also run the smallest size observed; write Perfetto JSON here",
    )
    args = parser.parse_args(argv)
    sizes = FULL_SIZES_GB if args.full else DEFAULT_SIZES_GB
    print(format_report(run(sizes_gb=sizes)))
    if args.trace_out is not None:
        write_traced_run(args.trace_out, sizes)
        print(f"\nwrote {args.trace_out} (+ {args.trace_out}.manifest.json)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
