"""Pack/unpack: contiguous buffers from discrete Python values.

The analogue of ``MPI_Pack`` / ``MPI_Unpack``.  The paper's Section III
observes that "traditional MPI programs usually operate on contiguous
and fix-sized data ... while MapReduce programs generally operate on
non-contiguous and variable sized key-value pair data", and that raw
MPI leaves the programmer to bridge that gap with pack/unpack.  This
module *is* that bridge; MPI-D's data-realignment step uses it to build
the address-sequential partitions it sends with one ``MPI_Send``.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

from repro.util.serde import decode_kv, encode_kv


class Packer:
    """Incrementally pack values into one contiguous byte buffer.

    Mirrors ``MPI_Pack``'s cursor style::

        p = Packer()
        p.pack("word")
        p.pack(3)
        buf = p.getbuffer()
    """

    def __init__(self) -> None:
        self._chunks: list[bytes] = []
        self._size = 0

    @property
    def size(self) -> int:
        """Bytes packed so far (the MPI ``position`` cursor)."""
        return self._size

    def pack(self, value: Any) -> int:
        """Append one value; returns its encoded size."""
        chunk = encode_kv(value)
        self._chunks.append(chunk)
        self._size += len(chunk)
        return len(chunk)

    def pack_many(self, values: Iterable[Any]) -> int:
        """Append several values; returns total encoded size."""
        before = self._size
        for value in values:
            self.pack(value)
        return self._size - before

    def getbuffer(self) -> bytes:
        """The contiguous packed buffer."""
        if len(self._chunks) != 1:
            merged = b"".join(self._chunks)
            self._chunks = [merged]
        return self._chunks[0] if self._chunks else b""

    def clear(self) -> None:
        self._chunks.clear()
        self._size = 0


class Unpacker:
    """Cursor-style decoding of a packed buffer (``MPI_Unpack``)."""

    def __init__(self, buf: bytes):
        self._buf = bytes(buf)
        self._pos = 0

    @property
    def position(self) -> int:
        return self._pos

    @property
    def remaining(self) -> int:
        return len(self._buf) - self._pos

    def unpack(self) -> Any:
        """Decode the next value and advance the cursor."""
        if self._pos >= len(self._buf):
            raise EOFError("unpack past end of buffer")
        value, self._pos = decode_kv(self._buf, self._pos)
        return value

    def __iter__(self) -> Iterator[Any]:
        while self._pos < len(self._buf):
            yield self.unpack()


def pack_records(records: Iterable[tuple[Any, Any]]) -> bytes:
    """Pack ``(key, value)`` pairs back-to-back into one buffer."""
    packer = Packer()
    for key, value in records:
        packer.pack(key)
        packer.pack(value)
    return packer.getbuffer()


def unpack_records(buf: bytes) -> Iterator[tuple[Any, Any]]:
    """Inverse of :func:`pack_records`."""
    unpacker = Unpacker(buf)
    while unpacker.remaining:
        key = unpacker.unpack()
        if not unpacker.remaining:
            raise ValueError("odd number of packed values: dangling key")
        value = unpacker.unpack()
        yield key, value
