"""Receive status and the wildcard constants.

``ANY_SOURCE`` / ``ANY_TAG`` mirror ``MPI_ANY_SOURCE`` / ``MPI_ANY_TAG``.
MPI-D's reducers receive "in the wildcard reception style ... from any
source" (paper §IV-A), which is exactly ``recv(source=ANY_SOURCE)``.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Match a message from any sender (MPI_ANY_SOURCE).
ANY_SOURCE = -1

#: Match a message with any user tag (MPI_ANY_TAG).
ANY_TAG = -1


@dataclass(frozen=True)
class Status:
    """What a completed receive matched: actual source, tag, payload size.

    ``count`` is the serialized payload size in bytes for object messages
    and the element count for buffer messages — the analogue of
    ``MPI_Get_count``.
    """

    source: int
    tag: int
    count: int

    def __post_init__(self) -> None:
        if self.source < 0:
            raise ValueError(f"status source must be a concrete rank: {self.source}")
        if self.count < 0:
            raise ValueError(f"status count may not be negative: {self.count}")
