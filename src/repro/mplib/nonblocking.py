"""Nonblocking request objects (``MPI_Request`` analogue).

A :class:`Request` is returned by ``isend``/``irecv``; it completes when
the runtime matches it with a message.  ``wait`` blocks with the world's
deadlock timeout; ``test`` polls.  The paper lists "MPI_Isend and
MPI_Irecv adoption to achieve much more overlapping of computing and
communication" as an MPI-D optimization — the MPI-D engine's overlapped
send path uses these.
"""

from __future__ import annotations

import pickle
import threading
from typing import TYPE_CHECKING, Any, Optional

from repro.mplib.errors import MpiError
from repro.mplib.status import Status

if TYPE_CHECKING:  # pragma: no cover
    from repro.mplib.comm import Communicator


class Request:
    """Handle for one in-flight nonblocking operation."""

    __slots__ = ("_owner", "_event", "_payload", "_status", "_raw_is_buffer")

    def __init__(self, owner: "Communicator"):
        self._owner = owner
        self._event = threading.Event()
        self._payload: Any = None
        self._status: Optional[Status] = None
        self._raw_is_buffer = False

    # -- completion (called by the runtime) ----------------------------------
    def complete_now(
        self, payload: Any, status: Status, raw_is_buffer: bool = False
    ) -> None:
        if self._event.is_set():
            raise MpiError("request completed twice")
        self._payload = payload
        self._status = status
        self._raw_is_buffer = raw_is_buffer
        self._event.set()

    # -- user API ---------------------------------------------------------------
    @property
    def completed(self) -> bool:
        return self._event.is_set()

    def test(self) -> bool:
        """Non-blocking completion check."""
        return self._event.is_set()

    def wait(self) -> Any:
        """Block until complete; return the received object (None for sends)."""
        return self.wait_with_status()[0]

    def wait_with_status(self) -> tuple[Any, Status]:
        payload, status = self.wait_with_status_raw()
        if payload is not None and not self._raw_is_buffer:
            payload = pickle.loads(payload)
        return payload, status

    def wait_with_status_raw(self) -> tuple[Any, Status]:
        """Like :meth:`wait_with_status` but without deserializing."""
        if not self._event.is_set():
            self._owner._await_event(self._event, "request wait")
        assert self._status is not None
        return self._payload, self._status

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "complete" if self._event.is_set() else "pending"
        return f"<Request {state}>"


def waitall(requests: list[Request]) -> list[Any]:
    """``MPI_Waitall``: block until every request completes; return values
    in request order."""
    return [req.wait() for req in requests]


def waitany(requests: list[Request], poll_interval: float = 0.001) -> tuple[int, Any]:
    """``MPI_Waitany``: block until the first request completes.

    Returns ``(index, value)``.  Polls because requests complete on other
    threads; the interval bounds wake-up latency, not correctness.
    """
    import time

    if not requests:
        raise ValueError("waitany needs at least one request")
    deadline = time.monotonic() + requests[0]._owner._world.progress_timeout
    while True:
        for i, req in enumerate(requests):
            if req.test():
                return i, req.wait()
        if time.monotonic() >= deadline:
            raise MpiError("waitany made no progress before the deadline")
        requests[0]._owner._world.check_abort()
        time.sleep(poll_interval)
