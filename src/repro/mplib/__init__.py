"""An in-process MPI-like message-passing library (the functional plane).

mpi4py is not installable in this offline environment, so the substrate
MPI-D needs — ranks, tags, blocking/nonblocking point-to-point with
``ANY_SOURCE`` wildcard reception, collectives, pack/unpack — is
implemented here from scratch over threads and per-rank mailboxes.  The
API deliberately follows mpi4py's conventions (guide: all-lowercase
methods communicate pickled Python objects; the capitalized ``Send`` /
``Recv`` pair moves numpy buffers).

Typical use::

    from repro.mplib import Runtime

    def main(comm):
        if comm.rank == 0:
            comm.send("hello", dest=1, tag=7)
        elif comm.rank == 1:
            msg = comm.recv(source=0, tag=7)
        return comm.rank

    results = Runtime(world_size=4).run(main)   # [0, 1, 2, 3]
"""

from repro.mplib.errors import (
    MpiError,
    DeadlockError,
    AbortError,
    TruncationError,
    RankError,
    TagError,
)
from repro.mplib.status import Status, ANY_SOURCE, ANY_TAG
from repro.mplib.comm import Communicator
from repro.mplib.nonblocking import Request, waitall, waitany
from repro.mplib.runtime import Runtime
from repro.mplib.datatypes import Packer, Unpacker, pack_records, unpack_records

__all__ = [
    "MpiError",
    "DeadlockError",
    "AbortError",
    "TruncationError",
    "RankError",
    "TagError",
    "Status",
    "ANY_SOURCE",
    "ANY_TAG",
    "Communicator",
    "Request",
    "waitall",
    "waitany",
    "Runtime",
    "Packer",
    "Unpacker",
    "pack_records",
    "unpack_records",
]
