"""Collective operations built on the point-to-point layer.

Algorithms are the textbook ones real MPI implementations use at small
scale: dissemination barrier, binomial-tree broadcast and reduce,
linear gather/scatter, shifted pairwise all-to-all.  Every collective
call advances a per-rank sequence number that is embedded in the
(reserved, negative) message tag, so back-to-back collectives can never
consume each other's traffic, and a fast rank's round-2 message cannot
be mistaken for round 1.

All ranks must call each collective in the same order — the usual MPI
contract; violating it shows up as a :class:`~repro.mplib.errors.DeadlockError`.
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Optional

from repro.mplib.errors import RankError
from repro.mplib.status import ANY_TAG

# Collective kind codes folded into the internal tag.
_K_BARRIER = 0
_K_BCAST = 1
_K_GATHER = 2
_K_SCATTER = 3
_K_REDUCE = 4
_K_ALLTOALL = 5

_NUM_KINDS = 8


def _internal_tag(comm, kind: int) -> int:
    """Reserved tag for this collective invocation.

    Python ints are unbounded, so the (seq, kind) encoding never wraps or
    collides.  Tags start at -2 because -1 is ANY_TAG.
    """
    seq = comm._coll_seq
    comm._coll_seq += 1
    tag = -2 - (seq * _NUM_KINDS + kind)
    assert tag != ANY_TAG
    return tag


def _check_root(comm, root: int) -> None:
    if not 0 <= root < comm.size:
        raise RankError(f"root {root} outside world of size {comm.size}")


def barrier(comm) -> None:
    """Dissemination barrier: ceil(log2(p)) rounds of shifted token passing."""
    tag = _internal_tag(comm, _K_BARRIER)
    p = comm.size
    if p == 1:
        return
    k = 0
    while (1 << k) < p:
        dist = 1 << k
        dest = (comm.rank + dist) % p
        src = (comm.rank - dist) % p
        comm._send_internal((tag, k), dest, tag)
        got = comm.recv(source=src, tag=tag)
        # Each (src, round) pair sends exactly one message under this tag
        # (distances are distinct mod p because every distance < p).
        assert got == (tag, k), f"barrier round mismatch: {got} != {(tag, k)}"
        k += 1


def bcast(comm, obj: Any, root: int = 0) -> Any:
    """Binomial-tree broadcast; every rank returns the root's object."""
    _check_root(comm, root)
    tag = _internal_tag(comm, _K_BCAST)
    p = comm.size
    if p == 1:
        return obj
    vrank = (comm.rank - root) % p
    value = obj if comm.rank == root else None
    have = comm.rank == root
    k = 0
    while (1 << k) < p:
        k += 1
    # Highest round first on the receive side: vrank receives in the round
    # where its lowest set bit is the distance.
    for r in range(k):
        dist = 1 << r
        if vrank < dist:
            # Already have the value: forward to vrank + dist.
            if have and vrank + dist < p:
                dest = (vrank + dist + root) % p
                comm._send_internal(value, dest, tag)
        elif vrank < 2 * dist:
            src = (vrank - dist + root) % p
            value = comm.recv(source=src, tag=tag)
            have = True
    return value


def gather(comm, obj: Any, root: int = 0) -> Optional[list]:
    """Linear gather: root returns ``[obj_0, ..., obj_{p-1}]``, others None."""
    _check_root(comm, root)
    tag = _internal_tag(comm, _K_GATHER)
    if comm.rank == root:
        out: list[Any] = [None] * comm.size
        out[root] = obj
        for peer in range(comm.size):
            if peer != root:
                out[peer] = comm.recv(source=peer, tag=tag)
        return out
    comm._send_internal(obj, root, tag)
    return None


def scatter(comm, objs: Optional[list], root: int = 0) -> Any:
    """Linear scatter: rank i returns ``objs[i]`` as held by the root."""
    _check_root(comm, root)
    tag = _internal_tag(comm, _K_SCATTER)
    if comm.rank == root:
        if objs is None or len(objs) != comm.size:
            raise ValueError(
                f"scatter root needs a list of exactly {comm.size} items, "
                f"got {None if objs is None else len(objs)}"
            )
        for peer in range(comm.size):
            if peer != root:
                comm._send_internal(objs[peer], peer, tag)
        return objs[root]
    return comm.recv(source=root, tag=tag)


def reduce(
    comm,
    obj: Any,
    op: Optional[Callable[[Any, Any], Any]] = None,
    root: int = 0,
) -> Any:
    """Binomial-tree reduction; the root returns the combined value.

    ``op`` must be associative (MPI's contract); it defaults to ``+``.
    For ``root == 0`` the combination order is rank order, so associative
    non-commutative ops (e.g. list concat) reduce deterministically.
    """
    _check_root(comm, root)
    if op is None:
        op = operator.add
    tag = _internal_tag(comm, _K_REDUCE)
    p = comm.size
    vrank = (comm.rank - root) % p
    accum = obj
    dist = 1
    while dist < p:
        if vrank & dist:
            parent = ((vrank - dist) + root) % p
            comm._send_internal(accum, parent, tag)
            accum = None
            break
        if vrank + dist < p:
            child = ((vrank + dist) + root) % p
            received = comm.recv(source=child, tag=tag)
            accum = op(accum, received)  # child holds higher ranks: right side
        dist <<= 1
    return accum if comm.rank == root else None


def allreduce(comm, obj: Any, op: Optional[Callable[[Any, Any], Any]] = None) -> Any:
    """Reduce to rank 0, then broadcast the result to everyone."""
    return bcast(comm, reduce(comm, obj, op, root=0), root=0)


def allgather(comm, obj: Any) -> list:
    """Gather to rank 0, then broadcast the full list."""
    return bcast(comm, gather(comm, obj, root=0), root=0)


def alltoall(comm, objs: list) -> list:
    """Shifted pairwise exchange: rank i's slot j goes to rank j's slot i."""
    if len(objs) != comm.size:
        raise ValueError(
            f"alltoall needs exactly {comm.size} items, got {len(objs)}"
        )
    tag = _internal_tag(comm, _K_ALLTOALL)
    p = comm.size
    out: list[Any] = [None] * p
    out[comm.rank] = objs[comm.rank]
    for shift in range(1, p):
        dest = (comm.rank + shift) % p
        src = (comm.rank - shift) % p
        comm._send_internal(objs[dest], dest, tag)
        out[src] = comm.recv(source=src, tag=tag)
    return out
