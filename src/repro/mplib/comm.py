"""Communicators, mailboxes and point-to-point messaging.

Semantics follow MPI:

* **standard send** (:meth:`Communicator.send`) is buffered — it deposits
  the message and returns (like ``MPI_Send`` on a small message);
* **synchronous send** (:meth:`Communicator.ssend`) completes only when a
  matching receive has consumed the message (``MPI_Ssend``);
* **receive** matches by ``(source, tag)`` with ``ANY_SOURCE`` /
  ``ANY_TAG`` wildcards, in arrival order — the non-overtaking rule
  (messages between one sender/receiver pair with one tag are received
  in the order sent) falls out of FIFO mailbox scans;
* posted nonblocking receives match before queued scans, in post order.

Object payloads are pickled on send and unpickled on receive, so a
mutated sender-side object can never race the receiver (the copy
semantics of a real network).  Buffer payloads (``Send``/``Recv``) carry
numpy arrays, copied on send, filled in place on receive.
"""

from __future__ import annotations

import pickle
import threading
import time
from collections import deque
from typing import Any, Optional

import numpy as np

from repro.mplib.errors import (
    AbortError,
    DeadlockError,
    RankError,
    TagError,
    TruncationError,
)
from repro.mplib.nonblocking import Request
from repro.mplib.status import ANY_SOURCE, ANY_TAG, Status

_WAIT_SLICE = 0.05  # seconds between abort/deadlock checks while blocked


#: Context id of the world communicator; splits derive nested tuples.
_WORLD_CONTEXT: tuple = ("world",)


class _Envelope:
    __slots__ = ("src", "tag", "payload", "count", "is_buffer", "sync_done", "ctx")

    def __init__(
        self,
        src: int,
        tag: int,
        payload: Any,
        count: int,
        is_buffer: bool,
        sync_done: Optional[threading.Event] = None,
        ctx: tuple = _WORLD_CONTEXT,
    ):
        self.src = src  # sender's rank *within its communicator*
        self.tag = tag
        self.payload = payload
        self.count = count
        self.is_buffer = is_buffer
        self.sync_done = sync_done
        self.ctx = ctx  # communication context: isolates sub-communicators

    def matches(self, source: int, tag: int, ctx: tuple) -> bool:
        return (
            self.ctx == ctx
            and (source == ANY_SOURCE or source == self.src)
            and (tag == ANY_TAG or tag == self.tag)
        )


class _PostedRecv:
    __slots__ = ("source", "tag", "request", "ctx")

    def __init__(self, source: int, tag: int, request: Request, ctx: tuple):
        self.source = source
        self.tag = tag
        self.request = request
        self.ctx = ctx

    def accepts(self, env: _Envelope) -> bool:
        return env.matches(self.source, self.tag, self.ctx)


class _Mailbox:
    __slots__ = ("lock", "cond", "pending", "posted")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.cond = threading.Condition(self.lock)
        self.pending: deque[_Envelope] = deque()
        self.posted: list[_PostedRecv] = []


class _World:
    """Shared state of one runtime: mailboxes, abort flag, timeout."""

    def __init__(self, size: int, progress_timeout: float = 30.0):
        if size < 1:
            raise ValueError(f"world size must be >= 1, got {size}")
        self.size = size
        self.progress_timeout = progress_timeout
        self.mailboxes = [_Mailbox() for _ in range(size)]
        self.abort_exc: Optional[BaseException] = None
        self._abort_lock = threading.Lock()

    def abort(self, exc: BaseException) -> None:
        with self._abort_lock:
            if self.abort_exc is None:
                self.abort_exc = exc
        for box in self.mailboxes:
            with box.lock:
                box.cond.notify_all()

    def check_abort(self) -> None:
        if self.abort_exc is not None:
            raise AbortError(str(self.abort_exc)) from self.abort_exc


class Communicator:
    """One rank's endpoint in a world.

    Each rank-thread owns its own ``Communicator`` (same ``_World``
    underneath), so per-rank state like the collective sequence number
    needs no locking.
    """

    def __init__(self, world: _World, rank: int):
        if not 0 <= rank < world.size:
            raise RankError(f"rank {rank} outside world of size {world.size}")
        self._world = world
        self._rank = rank
        self._coll_seq = 0  # advanced in lock-step on every rank (collectives.py)
        self._context_id: tuple = _WORLD_CONTEXT

    # -- identity ------------------------------------------------------------
    @property
    def rank(self) -> int:
        """This process's rank, 0-based (communicator-local)."""
        return self._rank

    @property
    def size(self) -> int:
        """Number of ranks in this communicator."""
        return self._world.size

    def _world_rank(self, local_rank: int) -> int:
        """Communicator-local rank -> mailbox (world) rank."""
        return local_rank

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Communicator rank={self._rank}/{self.size}>"

    # -- validation -------------------------------------------------------------
    def _check_peer(self, peer: int, what: str) -> None:
        if not 0 <= peer < self.size:
            raise RankError(f"{what} rank {peer} outside world of size {self.size}")

    @staticmethod
    def _check_user_tag(tag: int) -> None:
        if tag < 0:
            raise TagError(f"user tags must be >= 0 (negative reserved): {tag}")

    # -- send ----------------------------------------------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Standard-mode send of a Python object (buffered; returns at once)."""
        self._check_user_tag(tag)
        self._send_internal(obj, dest, tag)

    def ssend(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Synchronous send: returns only after a matching receive consumed it."""
        self._check_user_tag(tag)
        done = threading.Event()
        self._send_internal(obj, dest, tag, sync_done=done)
        self._await_event(done, f"ssend to rank {dest} (tag {tag})")

    def Send(self, array: np.ndarray, dest: int, tag: int = 0) -> None:
        """Buffer send: a copy of ``array`` travels (capital-S, mpi4py style)."""
        self._check_user_tag(tag)
        self._check_peer(dest, "destination")
        arr = np.array(array, copy=True)
        self._deposit(
            dest,
            _Envelope(
                self._rank,
                tag,
                arr,
                count=arr.size,
                is_buffer=True,
                ctx=self._context_id,
            ),
        )

    def _send_internal(
        self,
        obj: Any,
        dest: int,
        tag: int,
        sync_done: Optional[threading.Event] = None,
    ) -> None:
        self._world.check_abort()
        self._check_peer(dest, "destination")
        payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        env = _Envelope(
            self._rank, tag, payload, count=len(payload), is_buffer=False,
            sync_done=sync_done, ctx=self._context_id,
        )
        self._deposit(dest, env)

    def _deposit(self, dest: int, env: _Envelope) -> None:
        box = self._world.mailboxes[self._world_rank(dest)]
        with box.lock:
            # Posted (nonblocking) receives match first, in post order.
            for i, posted in enumerate(box.posted):
                if posted.accepts(env):
                    del box.posted[i]
                    _fulfill(posted.request, env)
                    return
            box.pending.append(env)
            box.cond.notify_all()

    # -- receive -----------------------------------------------------------------------
    def recv(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        status: bool = False,
    ) -> Any:
        """Blocking object receive.

        Returns the object, or ``(object, Status)`` when ``status=True``.
        ``source=ANY_SOURCE`` is the wildcard reception style MPI-D's
        reducers use.
        """
        req = self.irecv(source=source, tag=tag)
        obj, st = req.wait_with_status()
        return (obj, st) if status else obj

    def Recv(
        self,
        buf: np.ndarray,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
    ) -> Status:
        """Buffer receive into ``buf`` (in place); returns the :class:`Status`.

        Raises :class:`TruncationError` if the message has more elements
        than ``buf`` — MPI_ERR_TRUNCATE.
        """
        req = self._post_recv(source, tag)
        payload, st = req.wait_with_status_raw()
        if not isinstance(payload, np.ndarray):
            payload = np.frombuffer(
                pickle.loads(payload), dtype=buf.dtype
            )  # object message into buffer recv: decode bytes
        if payload.size > buf.size:
            raise TruncationError(
                f"message of {payload.size} elements exceeds buffer of {buf.size}"
            )
        flat = buf.reshape(-1)
        flat[: payload.size] = payload.reshape(-1).astype(buf.dtype, copy=False)
        return st

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        """Nonblocking object receive; complete with ``req.wait()``."""
        return self._post_recv(source, tag)

    def sendrecv(
        self,
        obj: Any,
        dest: int,
        source: int = ANY_SOURCE,
        sendtag: int = 0,
        recvtag: int = ANY_TAG,
    ) -> Any:
        """``MPI_Sendrecv``: post the receive, send, then wait.

        Safe for symmetric exchanges (every rank sendrecv's with a
        partner) where two blocking calls in the wrong order could
        deadlock under synchronous semantics.
        """
        self._check_user_tag(sendtag)
        req = self._post_recv(source, recvtag)
        self._send_internal(obj, dest, sendtag)
        return req.wait()

    def isend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        """Nonblocking send.  Standard mode buffers, so the request is
        complete on return — provided for API symmetry and overlap-style
        code (paper future work: "MPI_Isend and MPI_Irecv adoption")."""
        self._check_user_tag(tag)
        self._send_internal(obj, dest, tag)
        req = Request(owner=self)
        req.complete_now(payload=None, status=Status(self._rank, max(tag, 0), 0))
        return req

    def _post_recv(self, source: int, tag: int) -> Request:
        self._world.check_abort()
        if source != ANY_SOURCE:
            self._check_peer(source, "source")
        box = self._world.mailboxes[self._world_rank(self._rank)]
        req = Request(owner=self)
        with box.lock:
            for i, env in enumerate(box.pending):
                if env.matches(source, tag, self._context_id):
                    del box.pending[i]
                    _fulfill(req, env)
                    return req
            box.posted.append(_PostedRecv(source, tag, req, self._context_id))
        return req

    # -- probe -------------------------------------------------------------------------
    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Status:
        """Block until a matching message is queued; return its Status
        without consuming it.  (Messages grabbed by posted nonblocking
        receives are never visible to probe, as in MPI.)"""
        if source != ANY_SOURCE:
            self._check_peer(source, "source")
        box = self._world.mailboxes[self._world_rank(self._rank)]
        deadline = time.monotonic() + self._world.progress_timeout
        with box.lock:
            while True:
                self._world.check_abort()
                for env in box.pending:
                    if env.matches(source, tag, self._context_id):
                        return Status(env.src, env.tag, env.count)
                if time.monotonic() >= deadline:
                    raise DeadlockError(
                        f"rank {self._rank}: probe(source={source}, tag={tag}) "
                        f"made no progress for {self._world.progress_timeout}s"
                    )
                box.cond.wait(timeout=_WAIT_SLICE)

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Optional[Status]:
        """Non-blocking probe: Status of the first match, or None."""
        if source != ANY_SOURCE:
            self._check_peer(source, "source")
        box = self._world.mailboxes[self._world_rank(self._rank)]
        with box.lock:
            for env in box.pending:
                if env.matches(source, tag, self._context_id):
                    return Status(env.src, env.tag, env.count)
        return None

    # -- abort ----------------------------------------------------------------------------
    def abort(self, reason: str = "aborted") -> None:
        """Tear the world down: every blocked rank raises :class:`AbortError`."""
        self._world.abort(AbortError(f"rank {self._rank}: {reason}"))
        self._world.check_abort()

    # -- collectives (implemented over p2p in collectives.py) ---------------------------
    def barrier(self) -> None:
        from repro.mplib import collectives

        collectives.barrier(self)

    def bcast(self, obj: Any, root: int = 0) -> Any:
        from repro.mplib import collectives

        return collectives.bcast(self, obj, root)

    def gather(self, obj: Any, root: int = 0) -> Optional[list]:
        from repro.mplib import collectives

        return collectives.gather(self, obj, root)

    def scatter(self, objs: Optional[list], root: int = 0) -> Any:
        from repro.mplib import collectives

        return collectives.scatter(self, objs, root)

    def allgather(self, obj: Any) -> list:
        from repro.mplib import collectives

        return collectives.allgather(self, obj)

    def reduce(self, obj: Any, op=None, root: int = 0) -> Any:
        from repro.mplib import collectives

        return collectives.reduce(self, obj, op, root)

    def allreduce(self, obj: Any, op=None) -> Any:
        from repro.mplib import collectives

        return collectives.allreduce(self, obj, op)

    def alltoall(self, objs: list) -> list:
        from repro.mplib import collectives

        return collectives.alltoall(self, objs)

    # -- sub-communicators -------------------------------------------------------------
    def split(self, color: int, key: int = 0) -> Optional["Communicator"]:
        """``MPI_Comm_split``: partition the world into sub-communicators.

        Every rank in this communicator must call ``split`` (it is a
        collective).  Ranks passing the same ``color`` land in one new
        communicator; rank order inside it follows ``(key, old rank)``.
        ``color=None`` (``MPI_UNDEFINED``) opts out and returns None.

        The sub-communicator reuses the parent's mailboxes but remaps
        ranks and offsets tags into a reserved band, so traffic on
        different sub-communicators (or the parent) can never cross.
        """
        my_entry = (color, key, self._rank)
        entries = self.allgather(my_entry)
        if color is None:
            return None
        members = sorted(
            ((k, r) for c, k, r in entries if c == color),
            key=lambda kr: kr,
        )
        world_ranks = [r for _, r in members]
        new_rank = world_ranks.index(self._rank)
        # Each split call gets a distinct context id on every participant
        # (the collective sequence number just consumed by allgather is
        # identical across ranks, so this is globally consistent).
        context = (self._context_id, self._coll_seq, color)
        return _SubCommunicator(self._world, new_rank, world_ranks, context)

    # -- internals shared with Request -----------------------------------------------------
    def _await_event(self, event: threading.Event, what: str) -> None:
        deadline = time.monotonic() + self._world.progress_timeout
        while not event.wait(timeout=_WAIT_SLICE):
            self._world.check_abort()
            if time.monotonic() >= deadline:
                raise DeadlockError(
                    f"rank {self._rank}: {what} made no progress for "
                    f"{self._world.progress_timeout}s"
                )
        self._world.check_abort()


class _SubCommunicator(Communicator):
    """A communicator over a subset of world ranks (``Comm.split`` result).

    Local ranks are 0..len(members)-1; messages carry this communicator's
    context id, so traffic here never matches parent or sibling
    communicators even on identical tags.
    """

    def __init__(self, world: _World, rank: int, world_ranks: list[int], ctx: tuple):
        # Note: deliberately not calling super().__init__ — the rank
        # validation there is against world size, ours is against the group.
        if not 0 <= rank < len(world_ranks):
            raise RankError(
                f"rank {rank} outside group of size {len(world_ranks)}"
            )
        self._world = world
        self._rank = rank
        self._coll_seq = 0
        self._context_id = ctx
        self._ranks = list(world_ranks)

    @property
    def size(self) -> int:
        return len(self._ranks)

    @property
    def group_world_ranks(self) -> list[int]:
        """The world ranks behind local ranks 0..size-1."""
        return list(self._ranks)

    def _world_rank(self, local_rank: int) -> int:
        return self._ranks[local_rank]

    def _check_peer(self, peer: int, what: str) -> None:
        if not 0 <= peer < self.size:
            raise RankError(
                f"{what} rank {peer} outside sub-communicator of size {self.size}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<SubCommunicator rank={self._rank}/{self.size} "
            f"world_ranks={self._ranks}>"
        )


def _fulfill(req: Request, env: _Envelope) -> None:
    """Hand an envelope to a receive request (mailbox lock held)."""
    req.complete_now(
        payload=env.payload,  # pickled bytes, or a numpy array for buffer sends
        status=Status(env.src, env.tag, env.count),
        raw_is_buffer=env.is_buffer,
    )
    if env.sync_done is not None:
        env.sync_done.set()
