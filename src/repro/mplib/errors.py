"""Error hierarchy for the message-passing runtime."""

from __future__ import annotations


class MpiError(RuntimeError):
    """Base class for all runtime errors."""


class RankError(MpiError):
    """A rank argument is outside the communicator."""


class TagError(MpiError):
    """A user message used a reserved (negative) tag."""


class DeadlockError(MpiError):
    """A blocking operation exceeded the runtime's progress timeout.

    With every rank event-driven, a timeout on a blocking receive almost
    always means the program deadlocked (mismatched sends/recvs, a
    collective not entered by every rank, ...).
    """


class AbortError(MpiError):
    """The world was aborted by :meth:`Communicator.abort` on some rank."""


class TruncationError(MpiError):
    """A buffer receive got a message larger than the posted buffer —
    the MPI_ERR_TRUNCATE condition."""
