"""The launcher: ``mpiexec`` for in-process ranks.

:class:`Runtime` spawns one thread per rank, hands each a
:class:`~repro.mplib.comm.Communicator`, runs the user's main function,
and collects per-rank return values.  A crash on any rank aborts the
world (so no other rank hangs forever on a receive that will never be
matched) and re-raises the original exception in the caller.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.mplib.comm import Communicator, _World
from repro.mplib.errors import AbortError, MpiError


@dataclass
class _RankOutcome:
    value: Any = None
    error: Optional[BaseException] = None


@dataclass
class Runtime:
    """Run ``main(comm, *args, **kwargs)`` on ``world_size`` ranks.

    ``progress_timeout`` bounds how long any blocking operation may wait
    without progress before the runtime declares deadlock — generous for
    real work, small enough that a broken test fails rather than hangs.
    """

    world_size: int
    progress_timeout: float = 30.0
    name: str = "mplib"
    _threads: list = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.world_size < 1:
            raise ValueError(f"world size must be >= 1, got {self.world_size}")
        if self.progress_timeout <= 0:
            raise ValueError(
                f"progress timeout must be positive, got {self.progress_timeout}"
            )

    def run(
        self,
        main: Callable[..., Any],
        *args: Any,
        **kwargs: Any,
    ) -> list[Any]:
        """Execute ``main`` on every rank; returns per-rank return values.

        If any rank raises, the world is aborted and the first (lowest
        rank) original exception is re-raised here.
        """
        world = _World(self.world_size, progress_timeout=self.progress_timeout)
        outcomes = [_RankOutcome() for _ in range(self.world_size)]

        def entry(rank: int) -> None:
            comm = Communicator(world, rank)
            try:
                outcomes[rank].value = main(comm, *args, **kwargs)
            except BaseException as exc:  # noqa: BLE001 - must not lose rank errors
                outcomes[rank].error = exc
                world.abort(exc)

        threads = [
            threading.Thread(
                target=entry, args=(rank,), name=f"{self.name}-rank{rank}", daemon=True
            )
            for rank in range(self.world_size)
        ]
        self._threads = threads
        for t in threads:
            t.start()
        for t in threads:
            # Generous hard cap: individual blocking ops time out first.
            t.join(timeout=self.progress_timeout * 10)
            if t.is_alive():
                world.abort(MpiError(f"thread {t.name} failed to terminate"))
                raise MpiError(f"rank thread {t.name} did not terminate")

        # Prefer a non-abort root cause over secondary AbortErrors.
        primary = None
        for outcome in outcomes:
            if outcome.error is not None and not isinstance(outcome.error, AbortError):
                primary = outcome.error
                break
        if primary is None:
            for outcome in outcomes:
                if outcome.error is not None:
                    primary = outcome.error
                    break
        if primary is not None:
            raise primary
        return [outcome.value for outcome in outcomes]
