#!/usr/bin/env python3
"""The paper's Figure-5 WordCount, written against Table II directly.

Where :mod:`examples.quickstart` uses the high-level job API, this
example drives the raw C-style interface — ``MPI_D_Init``,
``MPI_D_Send(key, value)``, ``MPI_D_Recv()``, ``MPI_D_Finalize`` — on
the in-process runtime, with the paper's process layout: rank 0 is the
master, the next ranks are mappers, the last rank is the single reducer
(the 49+1+1 shape of Section IV-C, scaled down).

    python examples/wordcount_mpid.py
"""

from repro.core.api import MPI_D_Finalize, MPI_D_Init, MPI_D_Recv, MPI_D_Send
from repro.mplib import Runtime
from repro.workloads import generate_corpus, split_evenly

NUM_MAPPERS = 6
TAG_SPLIT = 100
TAG_RESULT = 101


def rank_main(comm):
    """One rank of the simulation system (master / mapper / reducer)."""
    mapper_ranks = list(range(1, 1 + NUM_MAPPERS))
    reducer_rank = 1 + NUM_MAPPERS

    if comm.rank == 0:
        # Master: distribute splits, collect the final counts.
        corpus = generate_corpus(total_bytes=30_000, vocab_size=300, seed=7)
        for m, split in zip(mapper_ranks, split_evenly(corpus, NUM_MAPPERS)):
            comm.send(split, dest=m, tag=TAG_SPLIT)
        return comm.recv(source=reducer_rank, tag=TAG_RESULT)

    if comm.rank in mapper_ranks:
        split = comm.recv(source=0, tag=TAG_SPLIT)
        MPI_D_Init(
            comm,
            role="mapper",
            reducer_ranks=[reducer_rank],
            combiner=lambda a, b: a + b,  # combine fn == reduce fn, as in Hadoop
        )
        # --- the paper's map() ---
        for line in split:
            for word in line.split():
                MPI_D_Send(word, 1)
        MPI_D_Finalize()
        return None

    # --- the paper's reduce() ---
    # Both sides of an MPI-D job share one combiner (like a Hadoop JobConf).
    MPI_D_Init(
        comm,
        role="reducer",
        num_mappers=NUM_MAPPERS,
        partition=0,
        combiner=lambda a, b: a + b,
    )
    counts = {}
    while True:
        item = MPI_D_Recv()
        if item is None:
            break
        word, values = item
        counts[word] = sum(values)
    MPI_D_Finalize()
    comm.send(counts, dest=0, tag=TAG_RESULT)
    return None


def main() -> None:
    world = 1 + NUM_MAPPERS + 1  # master + mappers + reducer
    results = Runtime(world_size=world, name="fig5-wordcount").run(rank_main)
    counts = results[0]
    total = sum(counts.values())
    print(f"{len(counts)} distinct words, {total} total occurrences")
    for word, n in sorted(counts.items(), key=lambda kv: -kv[1])[:8]:
        print(f"  {word:<12} {n}")


if __name__ == "__main__":
    main()
