#!/usr/bin/env python3
"""Anatomy of a Hadoop shuffle: where does a sort job's time go?

Runs GridMix-style JavaSort on the simulated Hadoop cluster (the
paper's 8-node GigE testbed) and breaks each reducer's lifetime into
copy / sort / reduce — the decomposition behind the paper's Figure 1 —
then shows how the copy share moves when the input grows (Table I's
effect, in miniature).

    python examples/shuffle_anatomy.py
"""

from repro.hadoop import JAVASORT_PROFILE, JobSpec, run_hadoop_job
from repro.util.units import GiB, fmt_time


def run_one(gb: int):
    metrics = run_hadoop_job(
        JobSpec(name=f"sort-{gb}g", input_bytes=gb * GiB, profile=JAVASORT_PROFILE)
    )
    copy = metrics.copy_times()
    print(f"\n=== JavaSort {gb} GB ===")
    print(
        f"elapsed {fmt_time(metrics.elapsed)}, "
        f"{len(metrics.map_tasks)} maps, {len(metrics.reduce_tasks)} reducers, "
        f"{metrics.data_locality() * 100:.0f}% data-local"
    )
    print(f"{'reducer':>8} {'copy':>10} {'sort':>10} {'reduce':>10}")
    for r in metrics.reduce_tasks[:6]:
        print(
            f"{r.task_id:>8} {fmt_time(r.copy_time):>10} "
            f"{fmt_time(r.sort_time):>10} {fmt_time(r.reduce_time):>10}"
        )
    if len(metrics.reduce_tasks) > 6:
        print(f"{'...':>8} ({len(metrics.reduce_tasks) - 6} more)")
    print(
        f"copy stage share of all task time: {metrics.copy_fraction * 100:.1f}%  "
        f"(avg copy {fmt_time(float(copy.mean()))})"
    )
    return metrics.copy_fraction


def main() -> None:
    fractions = {gb: run_one(gb) for gb in (1, 4, 8)}
    print("\n=== the Table-I effect ===")
    print("input size -> copy share of total mapper+reducer time")
    for gb, frac in fractions.items():
        bar = "#" * int(frac * 40)
        print(f"  {gb:>3} GB  {frac * 100:5.1f}%  {bar}")
    print(
        "\nThe copy stage grows from a minority cost to the dominant one "
        "as input scales — the paper's motivation for replacing it with "
        "MPI-grade communication."
    )


if __name__ == "__main__":
    main()
