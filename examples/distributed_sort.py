#!/usr/bin/env python3
"""Distributed sort on MPI-D: the paper's JavaSort, functionally.

Sorts GridMix-style random records through the MPI-D engine with a
TeraSort-style :class:`~repro.core.RangePartitioner`: sample the keys,
cut the key space into reducer ranges, route by binary search, sort
within each reducer — concatenated reducer outputs are globally sorted.

    python examples/distributed_sort.py
"""

from repro.core import MapReduceJob, MpiDConfig, RangePartitioner, run_job
from repro.workloads import generate_sort_records


def sort_map(key, value, emit):
    emit(key, value)


def sort_reduce(key, values, emit):
    for value in values:
        emit(key, value)


def main() -> None:
    records = generate_sort_records(3000, seed=77)
    sample = [k for k, _ in records[:300]]  # sample the first 10%
    num_reducers = 4
    partitioner = RangePartitioner.from_sample(sample, num_reducers)

    job = MapReduceJob(
        mapper=sort_map,
        reducer=sort_reduce,
        num_mappers=4,
        num_reducers=num_reducers,
        partitioner=partitioner,
        config=MpiDConfig(sort_keys=True),
        name="distributed-sort",
    )
    result = run_job(job, inputs=records)

    keys = [k for k, _ in result.output]
    assert keys == sorted(keys), "output is not globally sorted"
    assert len(result.output) == len(records)
    print(f"sorted {len(records)} records across {num_reducers} reducers")
    print(f"first key: {keys[0].hex()}")
    print(f"last key:  {keys[-1].hex()}")

    # Show the range balance the sampled boundaries achieved, and verify
    # ranges are disjoint and ordered — each reducer holds a contiguous
    # key range, so reducer outputs need no global merge.
    groups = [[] for _ in range(num_reducers)]
    for k in keys:
        groups[partitioner.partition(k, num_reducers)].append(k)
    for p in range(num_reducers - 1):
        assert max(groups[p]) < min(groups[p + 1]), "ranges overlap"
    print("\nrecords per reducer range:")
    for p, g in enumerate(groups):
        print(f"  reducer {p}: {len(g):>5}  {'#' * (len(g) // 30)}")
    print("\nreducer key ranges are disjoint and ordered: outputs")
    print("concatenate into the global sort without a merge step")


if __name__ == "__main__":
    main()
