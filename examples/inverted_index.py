#!/usr/bin/env python3
"""Inverted index: a second real MapReduce application on MPI-D.

Builds word -> sorted document list over a synthetic corpus, using the
grouping combiner (the paper's ``<K, {V, V'}>`` example) and MPI-D's
sorted-value delivery option — one of the library features Section III
advertises ("it can also sort the value list for each key on demand").

    python examples/inverted_index.py
"""

from repro.core import MapReduceJob, MpiDConfig, run_job
from repro.workloads import ZipfTextGenerator


def index_map(doc_id, text, emit):
    """Emit <word, doc_id> once per distinct word in the document."""
    for word in set(text.split()):
        emit(word, doc_id)


def index_reduce(word, doc_ids, emit):
    """Doc lists arrive pre-sorted thanks to sort_values=True."""
    emit(word, doc_ids)


def main() -> None:
    gen = ZipfTextGenerator(vocab_size=200, words_per_line=20, seed=11)
    docs = [(f"doc{i:03d}", gen.line()) for i in range(40)]

    job = MapReduceJob(
        mapper=index_map,
        reducer=index_reduce,
        num_mappers=4,
        num_reducers=3,
        config=MpiDConfig(sort_values=True),
        name="inverted-index",
    )
    result = run_job(job, inputs=docs)
    index = result.as_dict()

    print(f"indexed {len(docs)} documents, {len(index)} distinct terms\n")
    for word in list(sorted(index))[:8]:
        postings = index[word]
        shown = ", ".join(postings[:5]) + (" ..." if len(postings) > 5 else "")
        print(f"  {word:<10} ({len(postings):>2} docs)  {shown}")

    # Verify the sorted-values contract end to end.
    assert all(postings == sorted(postings) for postings in index.values())
    print("\nall posting lists arrived sorted (MPI-D sort_values=True)")


if __name__ == "__main__":
    main()
