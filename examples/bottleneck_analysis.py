#!/usr/bin/env python3
"""Where did the time go?  Resource utilization of a simulated sort.

Runs JavaSort on the simulated 8-node cluster and prints per-node disk
and link utilization — the measurement that explains both the paper's
Table I (the shuffle is disk- and network-hungry) and our what-if result
(on this hardware, the single SATA disk per node is the wall).

    python examples/bottleneck_analysis.py
"""

from repro.hadoop import HadoopSimulation, JAVASORT_PROFILE, JobSpec
from repro.util.units import GiB, fmt_bytes


def meter(frac: float, width: int = 24) -> str:
    return "#" * int(frac * width) + "." * (width - int(frac * width))


def main() -> None:
    sim = HadoopSimulation(
        spec=JobSpec(name="sort", input_bytes=4 * GiB, profile=JAVASORT_PROFILE)
    )
    metrics = sim.run()
    elapsed = metrics.elapsed
    report = sim.cluster.utilization_report(elapsed)

    print(f"JavaSort 4 GB finished in {elapsed:.1f}s simulated\n")
    print(f"{'node':<8} {'disk':<26} {'uplink':<26} {'downlink':<26} served")
    for name, stats in report.items():
        print(
            f"{name:<8} "
            f"[{meter(stats['disk'])}] "
            f"[{meter(stats['uplink'])}] "
            f"[{meter(stats['downlink'])}] "
            f"{fmt_bytes(stats['disk_bytes'])}"
        )

    workers = {k: v for k, v in report.items() if k != "node0"}
    disk_avg = sum(s["disk"] for s in workers.values()) / len(workers)
    net_avg = sum(
        max(s["uplink"], s["downlink"]) for s in workers.values()
    ) / len(workers)
    print(f"\nworker disk utilization: {disk_avg * 100:.0f}% avg")
    print(f"worker peak-link utilization: {net_avg * 100:.0f}% avg")
    bottleneck = "the disks" if disk_avg > net_avg else "the network"
    print(
        f"\n=> on this hardware {bottleneck} gate the sort — which is why "
        f"the IB what-if\n   experiment shows faster fabrics buying so "
        f"little until the disks improve."
    )


if __name__ == "__main__":
    main()
