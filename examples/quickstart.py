#!/usr/bin/env python3
"""Quickstart: WordCount through MPI-D in twenty lines.

Runs a real MapReduce job on the in-process MPI-like runtime: 3 mapper
ranks emit ``(word, 1)`` pairs via the MPI-D engine (hash-table
buffering, combining, realignment, MPI transfer), 2 reducer ranks
receive with wildcard MPI_Recv and sum.

    python examples/quickstart.py
"""

from repro.core import MapReduceJob, SummingCombiner, run_job
from repro.workloads import generate_corpus


def map_words(key, line, emit):
    """Emit <word, 1> for every word (the paper's Figure 5 map logic)."""
    for word in line.split():
        emit(word, 1)
        emit.count("words.seen")  # Hadoop-style user counter


def reduce_counts(word, counts, emit):
    """Sum the partial counts for one word."""
    emit(word, sum(counts))


def main() -> None:
    corpus = generate_corpus(total_bytes=50_000, vocab_size=500, seed=42)
    job = MapReduceJob(
        mapper=map_words,
        reducer=reduce_counts,
        combiner=SummingCombiner(),  # local combine, as MPI_D_Send does
        num_mappers=3,
        num_reducers=2,
        name="quickstart-wordcount",
    )
    result = run_job(job, inputs=corpus)

    print(f"counted {len(result)} distinct words from {len(corpus)} lines\n")
    top = sorted(result.output, key=lambda kv: -kv[1])[:10]
    print(f"{'word':<12} count")
    print("-" * 20)
    for word, count in top:
        print(f"{word:<12} {count}")

    sent = sum(s["records_sent"] for s in result.mapper_stats)
    wired = sum(s["bytes_sent"] for s in result.mapper_stats)
    print(f"\nmapper pairs emitted: {sent}, bytes on the wire: {wired}")
    print("(the summing combiner collapsed duplicate words before sending)")
    print(f"user counters: {result.counters}")


if __name__ == "__main__":
    main()
