#!/usr/bin/env python3
"""Survey the three communication primitives the paper compares.

Prints a compact latency + bandwidth comparison of Hadoop RPC,
HTTP-over-Jetty and MPICH2 (plus Socket/NIO, the paper's future-work
transport) at a few interesting message sizes — a fast way to see the
two-orders-of-magnitude gap that motivates MPI-D.

    python examples/transport_survey.py
"""

from repro.transports import (
    HadoopRpcTransport,
    JettyHttpTransport,
    MpichTransport,
    NioSocketTransport,
)
from repro.util.units import KiB, MiB, fmt_bytes, fmt_time

SIZES = [1, 64, 1 * KiB, 64 * KiB, 1 * MiB, 64 * MiB]
TRANSPORTS = [
    MpichTransport(),
    NioSocketTransport(),
    JettyHttpTransport(),
    HadoopRpcTransport(),
]


def main() -> None:
    print("one-way message latency (uncontended GigE)\n")
    header = f"{'size':>8} | " + " | ".join(f"{t.name:>12}" for t in TRANSPORTS)
    print(header)
    print("-" * len(header))
    for n in SIZES:
        cells = " | ".join(f"{fmt_time(t.latency(n)):>12}" for t in TRANSPORTS)
        print(f"{fmt_bytes(n):>8} | {cells}")

    rpc, mpi = HadoopRpcTransport(), MpichTransport()
    print(
        f"\nRPC/MPI latency gap: {rpc.latency(1) / mpi.latency(1):.1f}x at 1 B, "
        f"{rpc.latency(1 * MiB) / mpi.latency(1 * MiB):.0f}x at 1 MB"
    )

    print("\nbandwidth moving 128 MB (packet = 64 KB)\n")
    for t in TRANSPORTS:
        bw = t.bandwidth(128 * MiB, 64 * KiB)
        bar = "#" * int(bw / 2.5e6)
        print(f"  {t.name:>12}  {bw / 1e6:7.2f} MB/s  {bar}")
    print(
        "\nHadoop RPC's request/response round per packet caps it around "
        "1 MB/s; the streaming transports saturate the link."
    )


if __name__ == "__main__":
    main()
