#!/usr/bin/env python3
"""Two-stage pipeline: WordCount then global top-k, chained on MPI-D.

Real MapReduce workloads are chains of jobs; this example runs the
canonical top-k-words pipeline (stage 1: parallel WordCount with a
combiner; stage 2: funnel to one reducer that keeps the k best) through
:class:`repro.core.JobChain`.

    python examples/top_words_pipeline.py
"""

from repro.core import top_k_chain
from repro.workloads import generate_corpus


def main() -> None:
    corpus = generate_corpus(total_bytes=80_000, vocab_size=800, seed=20)
    chain = top_k_chain(k=8, num_mappers=4, num_reducers=3)
    result = chain.run(corpus)

    wordcount, topk = result.stages
    print(
        f"stage 1 (wordcount): {len(wordcount.output)} distinct words from "
        f"{len(corpus)} lines"
    )
    print(f"stage 2 (top-k):     kept {len(topk.output)}\n")
    print(f"{'rank':<6}{'word':<12}count")
    print("-" * 26)
    ranked = sorted(topk.output, key=lambda kv: -kv[1])
    for i, (word, count) in enumerate(ranked, 1):
        print(f"{i:<6}{word:<12}{count}")

    # Cross-check stage 2 against stage 1's full table.
    full = sorted(wordcount.output, key=lambda kv: (-kv[1], repr(kv[0])))
    assert {w for w, _ in ranked} <= {w for w, _ in full[: 8 + 20]}
    print("\ntop-k agrees with the full stage-1 count table")


if __name__ == "__main__":
    main()
