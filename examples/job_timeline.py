#!/usr/bin/env python3
"""Text gantt of a simulated Hadoop job: watch the shuffle happen.

Renders the per-task timeline of a small JavaSort on the simulated
cluster — map tasks filling slot waves, reducers starting at slowstart
and sitting in the copy stage until the last map output lands.  A
compact way to *see* why Table I's copy percentages are what they are.

    python examples/job_timeline.py
"""

from repro.hadoop import JAVASORT_PROFILE, JobSpec, run_hadoop_job
from repro.util.units import MiB

WIDTH = 72


def bar(start: float, end: float, total: float, char: str) -> str:
    t0 = int(start / total * WIDTH)
    t1 = max(t0 + 1, int(end / total * WIDTH))
    return " " * t0 + char * (t1 - t0) + " " * (WIDTH - t1)


def main() -> None:
    metrics = run_hadoop_job(
        JobSpec(name="sort", input_bytes=512 * MiB, profile=JAVASORT_PROFILE)
    )
    total = metrics.elapsed
    print(
        f"JavaSort 512 MB: {len(metrics.map_tasks)} maps, "
        f"{len(metrics.reduce_tasks)} reducers, {total:.1f}s simulated\n"
    )
    print(f"{'task':<10}|{'-' * WIDTH}|")
    for m in sorted(metrics.map_tasks, key=lambda t: t.started_at):
        print(f"map {m.task_id:<6}|{bar(m.started_at, m.finished_at, total, 'M')}|")
    for r in sorted(metrics.reduce_tasks, key=lambda t: t.started_at):
        copy = bar(r.started_at, r.copy_done_at, total, "c")
        rest = bar(r.copy_done_at, r.finished_at, total, "R")
        merged = "".join(b if b != " " else a for a, b in zip(copy, rest))
        print(f"red {r.task_id:<6}|{merged}|")
    print(f"{'':<10}|{'-' * WIDTH}|")
    print("\nM = map task, c = reduce copy stage (includes waiting for maps),")
    print("R = sort+reduce.  Note how every reducer's 'c' stretches until")
    print("the last map finishes — the copy-stage dominance of Figure 1.")
    print(f"\ncopy share of all task time: {metrics.copy_fraction * 100:.1f}%")


if __name__ == "__main__":
    main()
