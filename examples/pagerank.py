#!/usr/bin/env python3
"""PageRank as iterative MapReduce on MPI-D, checked against networkx.

MR-MPI (the paper's Related Work) made its name on MapReduce graph
algorithms over MPI; this example shows the same class of workload on
MPI-D.  Each round, every node ships ``rank/out_degree`` to its
neighbours through MPI_D_Send and carries its adjacency list along;
reducers apply the damping rule.  Iteration runs until the L1 delta of
the rank vector drops below tolerance, then the result is compared to
``networkx.pagerank`` on the same graph.

    python examples/pagerank.py
"""

import networkx as nx

from repro.core import MapReduceJob, l1_delta_below, run_iterative_job

DAMPING = 0.85


def make_graph(n: int = 60, seed: int = 4) -> nx.DiGraph:
    g = nx.gnp_random_graph(n, 0.08, seed=seed, directed=True)
    # PageRank needs every node to have somewhere to send rank mass.
    for node in list(g.nodes):
        if g.out_degree(node) == 0:
            g.add_edge(node, (node + 1) % n)
    return g


def pr_map(node, state, emit):
    """state = (rank, neighbours): scatter shares, keep the structure."""
    rank, neighbours = state
    share = rank / len(neighbours)
    for nbr in neighbours:
        emit(nbr, ("share", share))
    emit(node, ("adj", neighbours))


def make_reducer(n: int):
    def pr_reduce(node, values, emit):
        incoming = sum(v for kind, v in values if kind == "share")
        neighbours = next(v for kind, v in values if kind == "adj")
        new_rank = (1 - DAMPING) / n + DAMPING * incoming
        emit(node, (new_rank, neighbours))

    return pr_reduce


def main() -> None:
    g = make_graph()
    n = g.number_of_nodes()
    initial = [
        (node, (1.0 / n, sorted(g.successors(node)))) for node in g.nodes
    ]
    job = MapReduceJob(
        mapper=pr_map,
        reducer=make_reducer(n),
        num_mappers=4,
        num_reducers=2,
        name="pagerank",
    )
    outcome = run_iterative_job(
        job,
        inputs=initial,
        max_rounds=60,
        converged=l1_delta_below(1e-8, value_of=lambda state: state[0]),
    )
    ours = {node: state[0] for node, state in outcome.final.output}
    reference = nx.pagerank(g, alpha=DAMPING, tol=1e-10)

    worst = max(abs(ours[v] - reference[v]) for v in g.nodes)
    print(
        f"PageRank over {n} nodes / {g.number_of_edges()} edges: "
        f"{outcome.rounds} rounds, converged={outcome.converged}"
    )
    print(f"max |MPI-D - networkx| = {worst:.2e}")
    top = sorted(ours, key=ours.get, reverse=True)[:5]
    print("\ntop nodes (MPI-D vs networkx):")
    for v in top:
        print(f"  node {v:>3}: {ours[v]:.6f} vs {reference[v]:.6f}")
    assert worst < 1e-6, "diverged from the networkx reference"
    print("\nagrees with networkx.pagerank to 1e-6")


if __name__ == "__main__":
    main()
