"""Legacy setup shim.

Environments without the ``wheel`` package cannot complete a PEP-517
editable install; this shim keeps ``pip install -e . --no-use-pep517
--no-build-isolation`` working there.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
