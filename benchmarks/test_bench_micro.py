"""Micro-benchmarks of the library's hot paths.

Not a paper figure — these watch the costs that gate how big a
simulation the performance plane can run and how fast the functional
plane moves records: serialization, hashing, the MPI-D buffer/realign
pipeline, the DES kernel, max-min reallocation, and a real end-to-end
MPI-D WordCount on the thread runtime.

``pytest benchmarks/test_bench_micro.py --benchmark-only``
"""

from repro.core import HashTableBuffer, MapReduceJob, SummingCombiner, run_job
from repro.core.partitioner import HashPartitioner
from repro.core.realign import realign
from repro.simnet.kernel import Simulator
from repro.simnet.network import Network
from repro.util.hashing import stable_hash
from repro.util.serde import decode_record, encode_record
from repro.workloads import generate_corpus

WORDS = [f"word{i}" for i in range(200)]
RECORDS = [(w, i) for i, w in enumerate(WORDS * 25)]  # 5000 records


def test_bench_encode_record(benchmark):
    benchmark(lambda: [encode_record(k, v) for k, v in RECORDS[:500]])


def test_bench_decode_record(benchmark):
    blobs = [encode_record(k, v) for k, v in RECORDS[:500]]
    benchmark(lambda: [decode_record(b) for b in blobs])


def test_bench_stable_hash(benchmark):
    benchmark(lambda: [stable_hash(w) for w in WORDS * 10])


def test_bench_hashbuffer_add(benchmark):
    def fill():
        buf = HashTableBuffer(SummingCombiner())
        for k, v in RECORDS:
            buf.add(k, 1)
        return buf

    buf = benchmark(fill)
    assert len(buf) == len(WORDS)


def test_bench_realign(benchmark):
    items = [(w, [1] * 10) for w in WORDS * 5]
    out = benchmark(realign, items, HashPartitioner(), 8, 4096)
    assert len(out) == 8


def test_bench_des_event_throughput(benchmark):
    """10k chained timeouts through the kernel."""

    def run_sim():
        sim = Simulator()

        def proc(sim):
            for _ in range(10_000):
                yield sim.timeout(0.001)

        sim.process(proc(sim))
        return sim.run()

    assert benchmark(run_sim) > 0


def test_bench_maxmin_reallocation(benchmark):
    """100 staggered flows over shared links: the shuffle's hot loop."""

    def run_net():
        sim = Simulator()
        net = Network(sim)
        links = [net.add_link(f"l{i}", 1e6) for i in range(8)]

        def starter(sim):
            for i in range(100):
                net.transfer((links[i % 8], links[(i + 1) % 8]), 5e4)
                yield sim.timeout(0.001)

        sim.process(starter(sim))
        return sim.run()

    assert benchmark(run_net) > 0


def test_bench_mplib_collectives(benchmark):
    """Barrier + allreduce + alltoall rounds on 8 real rank-threads."""
    from repro.mplib import Runtime

    def round_trip():
        def main(comm):
            for _ in range(5):
                comm.barrier()
                comm.allreduce(comm.rank)
                comm.alltoall(list(range(comm.size)))
            return comm.rank

        return Runtime(8, progress_timeout=10.0).run(main)

    result = benchmark.pedantic(round_trip, rounds=3, iterations=1)
    assert result == list(range(8))


def test_bench_mrmpi_simulation(pedantic):
    """One 2 GB WordCount through the MPI-D performance twin."""
    from repro.hadoop.job import WORDCOUNT_PROFILE, JobSpec
    from repro.mrmpi import run_mpid_job
    from repro.util.units import GiB

    spec = JobSpec(
        "bench-wc", input_bytes=2 * GiB, profile=WORDCOUNT_PROFILE, num_reduce_tasks=1
    )
    metrics = pedantic(run_mpid_job, spec)
    assert metrics.elapsed > 0


def test_bench_end_to_end_wordcount(pedantic):
    """Real MPI-D WordCount on the thread runtime (functional plane)."""
    corpus = generate_corpus(total_bytes=40_000, vocab_size=300, seed=3)
    job = MapReduceJob(
        mapper=lambda k, v, emit: [emit(w, 1) for w in v.split()],
        reducer=lambda k, vs, emit: emit(k, sum(vs)),
        combiner=SummingCombiner(),
        num_mappers=4,
        num_reducers=2,
    )
    result = pedantic(run_job, job, corpus)
    assert len(result) > 0
