"""Benchmark: regenerate Figure 6 (WordCount, Hadoop vs MPI-D system).

Scaled sizes (1 and 6 GiB); the paper's 1/10/100 GB points are
``python -m repro.experiments.fig6_wordcount --full``.

``pytest benchmarks/test_bench_fig6.py --benchmark-only``
"""

from repro.experiments.fig6_wordcount import run


def test_bench_fig6_wordcount(pedantic):
    result = pedantic(run, sizes_gb=(1, 6))
    # MPI-D always wins...
    for gb in (1, 6):
        assert result.mpid[gb] < result.hadoop[gb]
    # ...hugely at 1 GB (paper: 8%, ours ~17%)...
    assert result.ratio(1) < 0.3
    # ...and the gap narrows as both become throughput-bound
    # (paper: 48% at 10 GB, 56% at 100 GB).
    assert result.ratio(1) < result.ratio(6) < 0.8
