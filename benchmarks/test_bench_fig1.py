"""Benchmark: regenerate Figure 1 (per-reducer copy/sort/reduce times).

Scale model: 8 GiB of JavaSort (128 maps/reducers over 7 workers, same
wave structure as the paper's 150 GB).  The --full equivalent lives in
``python -m repro.experiments.fig1_shuffle --full``.

``pytest benchmarks/test_bench_fig1.py --benchmark-only``
"""

from repro.experiments.fig1_shuffle import run
from repro.util.units import GiB


def test_bench_fig1_javasort_shuffle(pedantic):
    metrics = pedantic(run, input_bytes=8 * GiB)
    copy = metrics.copy_times()
    sort = metrics.sort_times()
    red = metrics.reduce_times()
    # The paper's qualitative claims about Figure 1:
    # sort is negligible ("the points of the sort stage are always near
    # the X-axis"), and copy dominates the reducer lifecycle.
    assert float(sort.mean()) < 0.05
    assert float(copy.mean()) > float(red.mean())
    share = copy.sum() / (copy.sum() + sort.sum() + red.sum())
    assert share > 0.5  # paper: ~95% at 150 GB; grows with scale
    # First-wave reducers (scheduled during the map phase) wait longest.
    first_wave = sorted(metrics.reduce_tasks, key=lambda r: r.started_at)[0]
    assert first_wave.copy_time >= float(copy.mean())
