"""Benchmark: regenerate Table I (copy share across sizes x slots).

Scaled grid (1-8 GiB); the paper's full 1-150 GB grid is
``python -m repro.experiments.table1_copy_pct --full``.

``pytest benchmarks/test_bench_table1.py --benchmark-only``
"""

from repro.experiments.table1_copy_pct import run


def test_bench_table1_sweep(pedantic):
    result = pedantic(run, sizes_gb=(1, 4, 8))
    # Every cell is a meaningful share of task time...
    assert 0.05 < result.min_pct / 100 < result.max_pct / 100 < 1.0
    # ...and the copy share grows with input size in every slot config
    # (the table's headline trend: 33.9% smallest, 82.7% biggest).
    for cfg in ("4/2", "4/4", "8/8", "16/16"):
        assert result.cells[8][cfg] > result.cells[1][cfg]
    # At the biggest size the copy stage is the dominant cost.
    assert result.cells[8]["8/8"] > 0.4
