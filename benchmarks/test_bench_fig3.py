"""Benchmark: regenerate Figure 3 (bandwidth moving 128 MB).

``pytest benchmarks/test_bench_fig3.py --benchmark-only``
"""

import pytest

from repro.experiments import paper
from repro.experiments.fig3_bandwidth import run


def test_bench_fig3_bandwidth_sweep(benchmark):
    result = benchmark(run, include_nio=True, jitter=False)
    rpc = result.peak("Hadoop RPC")
    jetty = result.peak("HTTP/Jetty")
    mpich = result.peak("MPICH2")
    # Paper: RPC peaks ~1.4 MB/s; Jetty ~108; MPICH2 ~111 (2-3% above).
    assert rpc < 2e6
    assert jetty == pytest.approx(paper.FIG3_JETTY_PEAK, rel=0.05)
    assert mpich == pytest.approx(paper.FIG3_MPICH_PEAK, rel=0.05)
    assert 1.0 < mpich / jetty < 1.06
    assert mpich / rpc > 50  # "about 100 times"
    # Effective from 256 bytes up (both streaming transports).
    assert result.series["HTTP/Jetty"][256] > 60e6
    assert result.series["MPICH2"][256] > 50e6
