"""Shared benchmark configuration.

Each ``test_bench_*`` module regenerates one of the paper's tables or
figures (at a scale that keeps the whole suite in minutes) and asserts
its headline shape, so ``pytest benchmarks/ --benchmark-only`` is both a
performance harness and a reproduction check.
"""

import pytest


@pytest.fixture
def pedantic(benchmark):
    """Run expensive simulations a bounded number of times."""

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(
            fn, args=args, kwargs=kwargs, rounds=3, iterations=1, warmup_rounds=0
        )

    return run
