"""Benchmark: regenerate Figure 2 (latency, Hadoop RPC vs MPICH2).

``pytest benchmarks/test_bench_fig2.py --benchmark-only``
"""

import pytest

from repro.experiments import paper
from repro.experiments.fig2_latency import run
from repro.util.units import KiB, MiB


def test_bench_fig2_latency_sweep(benchmark):
    """Full three-panel sweep with the paper's 100-trial methodology."""
    result = benchmark(run, trials=100)
    # Headline shapes from Section II-B.
    assert result.ratio(1) == pytest.approx(paper.FIG2_RATIO_1B, rel=0.15)
    assert result.ratio(1 * KiB) == pytest.approx(paper.FIG2_RATIO_1KB, rel=0.25)
    assert result.ratio(1 * MiB) == pytest.approx(paper.FIG2_RATIO_1MB, rel=0.2)
    for n in (256 * KiB, 1 * MiB, 16 * MiB):
        assert result.ratio(n) > 90  # ">100 times" beyond 256 KB
    # MPICH2 stays under 1 ms through 1 KB.
    assert all(result.mpich[n] < 1e-3 for n in (1, 16, 1 * KiB))
