"""Unit + property tests for repro.util.hashing."""

import subprocess
import sys

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.hashing import fnv1a_64, java_string_hash, stable_hash


class TestFnv1a:
    def test_known_vectors(self):
        # Published FNV-1a 64-bit test vectors.
        assert fnv1a_64(b"") == 0xCBF29CE484222325
        assert fnv1a_64(b"a") == 0xAF63DC4C8601EC8C
        assert fnv1a_64(b"foobar") == 0x85944171F73967E8

    @given(st.binary(max_size=64))
    def test_in_64bit_range(self, data):
        assert 0 <= fnv1a_64(data) < 2**64


class TestJavaStringHash:
    def test_known_values(self):
        # Values computed by java.lang.String.hashCode.
        assert java_string_hash("") == 0
        assert java_string_hash("a") == 97
        assert java_string_hash("hello") == 99162322
        assert java_string_hash("polygenelubricants") == -2147483648

    @given(st.text(max_size=32))
    def test_signed_32bit_range(self, s):
        h = java_string_hash(s)
        assert -(2**31) <= h < 2**31


class TestStableHash:
    @given(
        st.one_of(
            st.text(max_size=32),
            st.binary(max_size=32),
            st.integers(),
            st.floats(allow_nan=False),
            st.booleans(),
            st.none(),
        )
    )
    def test_deterministic_and_nonnegative(self, key):
        assert stable_hash(key) == stable_hash(key)
        assert 0 <= stable_hash(key) < 2**64

    def test_tuple_keys(self):
        assert stable_hash(("a", 1)) == stable_hash(("a", 1))
        assert stable_hash(("a", 1)) != stable_hash(("a", 2))

    def test_tuple_not_concatenation_confusable(self):
        # ("ab", "c") must differ from ("a", "bc").
        assert stable_hash(("ab", "c")) != stable_hash(("a", "bc"))

    def test_rejects_unsupported(self):
        with pytest.raises(TypeError):
            stable_hash({"a": 1})

    def test_stable_across_processes(self):
        # The reason this module exists: Python's hash() is randomized per
        # process; stable_hash must not be.
        code = (
            "from repro.util.hashing import stable_hash;"
            "print(stable_hash('shuffle-key'))"
        )
        outs = {
            subprocess.run(
                [sys.executable, "-c", code], capture_output=True, text=True
            ).stdout.strip()
            for _ in range(2)
        }
        assert len(outs) == 1
        assert outs == {str(stable_hash("shuffle-key"))}
