"""Tests for the seeding discipline."""

from hypothesis import given
from hypothesis import strategies as st

from repro.util.rng import derive_seed, make_rng


class TestDeriveSeed:
    @given(st.integers(0, 2**32), st.text(max_size=16), st.integers(0, 100))
    def test_deterministic(self, root, label, idx):
        assert derive_seed(root, label, idx) == derive_seed(root, label, idx)

    def test_distinct_paths(self):
        seeds = {
            derive_seed(7, "node", i) for i in range(100)
        }
        assert len(seeds) == 100

    def test_distinct_roots(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    @given(st.integers(0, 2**32))
    def test_nonnegative(self, root):
        assert derive_seed(root, "anything") >= 0


class TestMakeRng:
    def test_same_path_same_stream(self):
        a = make_rng(42, "gen").random(8)
        b = make_rng(42, "gen").random(8)
        assert (a == b).all()

    def test_different_path_different_stream(self):
        a = make_rng(42, "gen", 0).random(8)
        b = make_rng(42, "gen", 1).random(8)
        assert not (a == b).all()
