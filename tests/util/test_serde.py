"""Unit + property tests for the length-prefixed K/V encoding."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.serde import (
    decode_kv,
    decode_record,
    encode_kv,
    encode_record,
    encoded_kv_size,
    iter_records,
    serialized_size,
)

scalar = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(),
    st.floats(allow_nan=False),
    st.text(max_size=64),
    st.binary(max_size=64),
)
value = st.recursive(
    scalar,
    lambda inner: st.lists(inner, max_size=4) | st.tuples(inner, inner),
    max_leaves=8,
)


def _norm(obj):
    """bool encodes through the int branch: normalize for equality checks."""
    if isinstance(obj, bool):
        return int(obj)
    if isinstance(obj, bytearray):
        return bytes(obj)
    if isinstance(obj, list):
        return [_norm(x) for x in obj]
    if isinstance(obj, tuple):
        return tuple(_norm(x) for x in obj)
    return obj


class TestRoundtrip:
    @given(value)
    def test_roundtrip(self, obj):
        buf = encode_kv(obj)
        decoded, end = decode_kv(buf)
        assert end == len(buf)
        assert decoded == _norm(obj)

    @given(scalar, scalar)
    def test_record_roundtrip(self, k, v):
        buf = encode_record(k, v)
        key, val, end = decode_record(buf)
        assert (key, val) == (_norm(k), _norm(v))
        assert end == len(buf)

    def test_pickle_fallback(self):
        obj = {"a": 1, "b": [2, 3]}
        decoded, _ = decode_kv(encode_kv(obj))
        assert decoded == obj

    def test_big_int(self):
        n = 2**200 + 17
        assert decode_kv(encode_kv(n))[0] == n
        assert decode_kv(encode_kv(-n))[0] == -n


class TestSizes:
    @given(value)
    def test_size_matches_encoding(self, obj):
        assert encoded_kv_size(obj) == len(encode_kv(obj))

    @given(scalar, scalar)
    def test_serialized_size_is_record_size(self, k, v):
        assert serialized_size(k, v) == len(encode_record(k, v))

    def test_header_overhead_is_five_bytes(self):
        assert encoded_kv_size(b"") == 5
        assert encoded_kv_size(b"xy") == 7


class TestStreams:
    @given(st.lists(st.tuples(scalar, scalar), max_size=16))
    def test_iter_records(self, records):
        buf = b"".join(encode_record(k, v) for k, v in records)
        got = list(iter_records(buf))
        assert got == [(_norm(k), _norm(v)) for k, v in records]

    def test_truncated_header(self):
        buf = encode_kv("hello")
        with pytest.raises(ValueError, match="truncated"):
            decode_kv(buf[:3])

    def test_truncated_payload(self):
        buf = encode_kv("hello world")
        with pytest.raises(ValueError, match="truncated"):
            decode_kv(buf[:-2])

    def test_unknown_tag(self):
        with pytest.raises(ValueError, match="unknown tag"):
            decode_kv(b"\xee\x00\x00\x00\x00")
