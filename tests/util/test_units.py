"""Unit tests for repro.util.units."""

import pytest

from repro.util.units import (
    GB,
    GiB,
    KB,
    MB,
    MiB,
    fmt_bytes,
    fmt_time,
    parse_size,
)


class TestConstants:
    def test_binary_prefixes(self):
        assert KB == 1024
        assert MB == 1024**2
        assert GB == 1024**3

    def test_hadoop_alias_is_binary(self):
        assert MB == MiB
        assert GB == GiB


class TestParseSize:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("64MB", 64 * MB),
            ("64 MB", 64 * MB),
            ("1gb", GB),
            ("1.5 GiB", int(1.5 * GB)),
            ("128", 128),
            ("0", 0),
            ("10k", 10 * KB),
            ("7b", 7),
        ],
    )
    def test_valid(self, text, expected):
        assert parse_size(text) == expected

    def test_int_passthrough(self):
        assert parse_size(4096) == 4096

    def test_float_rounds_down(self):
        assert parse_size(10.9) == 10

    def test_unknown_suffix(self):
        with pytest.raises(ValueError, match="unknown size suffix"):
            parse_size("3qb")

    def test_missing_number(self):
        with pytest.raises(ValueError, match="no numeric part"):
            parse_size("MB")

    def test_negative(self):
        with pytest.raises(ValueError, match="negative"):
            parse_size(-1)


class TestFormatting:
    def test_fmt_bytes_units(self):
        assert fmt_bytes(512) == "512 B"
        assert fmt_bytes(64 * KB) == "64.0 KB"
        assert fmt_bytes(3 * MB) == "3.0 MB"
        assert fmt_bytes(2 * GB) == "2.0 GB"

    def test_fmt_bytes_negative(self):
        assert fmt_bytes(-64 * KB) == "-64.0 KB"

    def test_fmt_time_scales(self):
        assert fmt_time(5e-6) == "5.0 us"
        assert fmt_time(1.3e-3) == "1.30 ms"
        assert fmt_time(2.5) == "2.50 s"
        assert fmt_time(300) == "5.0 min"

    def test_fmt_time_negative(self):
        assert fmt_time(-0.25).startswith("-")
