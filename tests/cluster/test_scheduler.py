"""ClusterScheduler unit tests: entitlements, budgets, gangs, preemption."""

import pytest

from repro.cluster import ClusterScheduler, QueueConfig, SchedulerConfig


def make_sched(policy="fair", queues=None, nodes=4, map_slots=4,
               reduce_slots=2, clock=None, **cfg):
    queues = queues or [QueueConfig(name="a"), QueueConfig(name="b")]
    return ClusterScheduler(
        SchedulerConfig(policy=policy, **cfg),
        queues,
        list(range(1, nodes + 1)),
        map_slots,
        reduce_slots,
        clock=clock or (lambda: 0.0),
    )


class TestEntitlements:
    def test_fair_splits_by_weight(self):
        sched = make_sched(
            queues=[
                QueueConfig(name="a", weight=3.0),
                QueueConfig(name="b", weight=1.0),
            ]
        )
        sched.register_job(1, "a")
        sched.register_job(2, "b")
        # 16 map slots total: a gets 12, b gets 4.
        assert sched.entitlement(1, "map") == pytest.approx(12.0)
        assert sched.entitlement(2, "map") == pytest.approx(4.0)

    def test_fair_splits_within_queue(self):
        sched = make_sched()
        sched.register_job(1, "a")
        sched.register_job(2, "a")
        # Queue a owns half the cluster while b is idle... but b has no
        # jobs, so a's weight is the whole active weight: 16 / 2 jobs.
        assert sched.entitlement(1, "map") == pytest.approx(8.0)

    def test_idle_queue_carries_no_weight(self):
        sched = make_sched()
        sched.register_job(1, "a")
        assert sched.entitlement(1, "map") == pytest.approx(16.0)

    def test_capacity_guarantee_and_ceiling(self):
        sched = make_sched(
            policy="capacity",
            queues=[
                QueueConfig(name="a", capacity=0.5, max_capacity=0.5),
                QueueConfig(name="b", capacity=0.25),
            ],
        )
        sched.register_job(1, "a")
        sched.register_job(2, "b")
        # a is pinned at its 0.5 ceiling; b gets its 0.25 guarantee plus
        # half the 0.25 spare (equal weights).
        assert sched.entitlement(1, "map") == pytest.approx(16 * 0.5)
        assert sched.entitlement(2, "map") == pytest.approx(16 * 0.375)

    def test_fifo_has_no_cap(self):
        sched = make_sched(policy="fifo")
        sched.register_job(1, "a")
        sched.register_job(2, "a")
        assert sched.entitlement(1, "map") == 16.0
        assert sched.budget(1, 1, "map", free=4) == 4


class TestBudget:
    def test_budget_is_capped_by_entitlement(self):
        sched = make_sched()
        sched.register_job(1, "a")
        sched.register_job(2, "b")  # entitlement: 8 each
        for _ in range(8):
            sched.task_started(1, 1, "map")
        assert sched.budget(1, 2, "map", free=4) == 0

    def test_ceil_guarantees_progress(self):
        """Twenty jobs on 16 slots: fractional entitlements still grant
        at least one task each (the no-starvation property)."""
        sched = make_sched(queues=[QueueConfig(name="a")])
        for jid in range(20):
            sched.register_job(jid, "a")
        for jid in range(20):
            assert sched.budget(jid, 1 + jid % 4, "map", free=4) >= 1

    def test_budget_respects_other_jobs_on_node(self):
        sched = make_sched()
        sched.register_job(1, "a")
        sched.register_job(2, "b")
        for _ in range(4):
            sched.task_started(1, 1, "map")  # node 1 physically full
        assert sched.budget(2, 1, "map", free=4) == 0
        assert sched.budget(2, 2, "map", free=4) > 0

    def test_unregistered_job_gets_nothing(self):
        sched = make_sched()
        assert sched.budget(99, 1, "map", free=4) == 0


class TestUsageLedgers:
    def test_finish_after_finalize_is_tolerated(self):
        sched = make_sched()
        sched.register_job(1, "a")
        sched.task_started(1, 1, "map")
        sched.job_finished(1)
        sched.task_finished(1, 1, "map")  # late callback: no-op
        assert sched._node_used[(1, "map")] == 0

    def test_job_finished_sweeps_residue(self):
        """A crashed node orphans task_started entries; deregistration
        must sweep them so the node's slots are not leaked forever."""
        sched = make_sched()
        sched.register_job(1, "a")
        sched.task_started(1, 2, "map")
        sched.task_started(1, 2, "map")
        sched.register_job(2, "b")
        sched.job_finished(1)  # job died without task_finished
        assert sched.budget(2, 2, "map", free=4) == 4

    def test_slot_seconds_integrate_over_time(self):
        t = [0.0]
        sched = make_sched(clock=lambda: t[0])
        sched.register_job(1, "a")
        sched.task_started(1, 1, "map")
        t[0] = 10.0
        sched.task_started(1, 1, "map")  # 1 slot for 10 s
        t[0] = 15.0
        sched.finalize()  # +2 slots for 5 s
        assert sched.slot_seconds["a"] == pytest.approx(20.0)
        assert sched.utilization("a", 15.0) == pytest.approx(
            20.0 / ((16 + 8) * 15.0)
        )


class TestGangs:
    def test_reserve_all_or_nothing(self):
        sched = make_sched()
        sched.register_job(1, "a")
        sched.task_started(1, 1, "map")
        sched.task_started(1, 1, "map")
        sched.register_job(2, "b")
        needs = {1: 3, 2: 2}  # node 1 only has 2 free
        assert sched.gang_shortfall(needs) == {1: 1}
        assert not sched.try_reserve(2, needs)
        # Nothing was booked by the failed attempt.
        assert sched.budget(1, 2, "map", free=4) > 0
        assert sched._jobs[2].usage["map"] == 0

    def test_reserve_books_and_releases(self):
        sched = make_sched()
        sched.register_job(1, "a")
        assert sched.try_reserve(1, {1: 4, 2: 2})
        assert sched._node_used[(1, "map")] == 4
        sched.job_finished(1)
        assert sched._node_used[(1, "map")] == 0

    def test_double_reserve_rejected(self):
        sched = make_sched()
        sched.register_job(1, "a")
        assert sched.try_reserve(1, {1: 1})
        with pytest.raises(ValueError, match="already holds"):
            sched.try_reserve(1, {2: 1})

    def test_infeasible_gang(self):
        sched = make_sched()  # 4 map slots per node, workers 1..4
        assert not sched.gang_feasible({1: 5})
        assert not sched.gang_feasible({99: 1})
        assert sched.gang_feasible({1: 4, 4: 4})


class TestPreemption:
    def test_no_preemption_without_demand(self):
        """A job hogging the cluster is fine while nobody else wants in."""
        sched = make_sched()
        sched.register_job(1, "a")
        for _ in range(16):
            sched.task_started(1, 1 + _ % 4, "map")
        sched.register_job(2, "b")
        assert sched.overages("map", {1: 10, 2: 0}) == []

    def test_overage_paid_to_starved_job(self):
        sched = make_sched(preemption_grace_slots=1)
        sched.register_job(1, "a")
        for i in range(16):
            sched.task_started(1, 1 + i % 4, "map")
        sched.register_job(2, "b")  # entitlements drop to 8 each
        victims = sched.overages("map", {2: 8})
        # Job 1 runs 16 vs ceil(8) entitlement: loses 16-8-1(grace) = 7.
        assert victims == [(1, 7)]

    def test_gangs_are_never_victims(self):
        sched = make_sched()
        sched.register_job(1, "a")
        assert sched.try_reserve(1, {1: 4, 2: 4, 3: 4, 4: 4})
        sched.register_job(2, "b")
        assert sched.overages("map", {2: 8}) == []

    def test_fifo_never_preempts(self):
        sched = make_sched(policy="fifo")
        sched.register_job(1, "a")
        for i in range(16):
            sched.task_started(1, 1 + i % 4, "map")
        sched.register_job(2, "b")
        assert sched.overages("map", {2: 8}) == []

    def test_note_preempted_counts(self):
        sched = make_sched()
        sched.note_preempted("map", 3)
        sched.note_preempted("reduce", 1)
        assert sched.preemptions == {"map": 3, "reduce": 1}


class TestValidation:
    def test_queue_validation(self):
        with pytest.raises(ValueError, match="weight"):
            QueueConfig(name="x", weight=0)
        with pytest.raises(ValueError, match="capacity"):
            QueueConfig(name="x", capacity=1.5)
        with pytest.raises(ValueError, match="max_capacity"):
            QueueConfig(name="x", capacity=0.8, max_capacity=0.5)
        with pytest.raises(ValueError, match="max_running"):
            QueueConfig(name="x", max_running=0)

    def test_scheduler_config_validation(self):
        with pytest.raises(ValueError, match="policy"):
            SchedulerConfig(policy="lottery")
        with pytest.raises(ValueError, match="interval"):
            SchedulerConfig(preemption_interval=0)

    def test_duplicate_queue_names(self):
        with pytest.raises(ValueError, match="duplicate"):
            make_sched(queues=[QueueConfig(name="a"), QueueConfig(name="a")])

    def test_unknown_queue_on_register(self):
        sched = make_sched()
        with pytest.raises(KeyError, match="unknown queue"):
            sched.register_job(1, "nope")

    def test_double_register(self):
        sched = make_sched()
        sched.register_job(1, "a")
        with pytest.raises(ValueError, match="already registered"):
            sched.register_job(1, "a")
