"""MultiTenantEngine integration tests: determinism, overload, chaos."""

import json

import pytest

from repro.cluster import (
    MultiTenantEngine,
    QueueConfig,
    SchedulerConfig,
    TenantSpec,
    percentile,
)
from repro.hadoop import (
    HadoopConfig,
    JobSpec,
    WORDCOUNT_PROFILE,
    run_hadoop_job,
)
from repro.hadoop.job import WorkloadProfile
from repro.mrmpi import MrMpiConfig, run_mpid_job
from repro.simnet.faults import FaultPlan, DiskFailure, NodeCrash, Straggler
from repro.util.units import GiB, MiB


def wordcount(mb=256, name="solo", reducers=7):
    return JobSpec(
        name=name,
        input_bytes=mb * MiB,
        profile=WORDCOUNT_PROFILE,
        num_reduce_tasks=reducers,
    )


class TestPercentile:
    def test_nearest_rank(self):
        vals = [1.0, 2.0, 3.0, 4.0]
        assert percentile(vals, 50) == 2.0
        assert percentile(vals, 95) == 4.0
        assert percentile([], 50) == 0.0


class TestSingleJobEquivalence:
    """An empty arrival stream with one job must be bit-for-bit the
    standalone runtimes: the shared kernel adds no perturbation."""

    def test_hadoop_bit_for_bit(self):
        solo = run_hadoop_job(wordcount(), seed=2011)
        eng = MultiTenantEngine([], seed=2011)
        eng.add_job(wordcount())
        eng.run()
        (record,) = eng.records
        assert record.outcome == "done"
        assert json.dumps(record.metrics.to_dict(), sort_keys=True) == (
            json.dumps(solo.to_dict(), sort_keys=True)
        )

    def test_mpid_bit_for_bit(self):
        solo = run_mpid_job(wordcount(), config=MrMpiConfig())
        eng = MultiTenantEngine([], seed=2011)
        eng.add_job(wordcount(), runtime="mpid", mpid_config=MrMpiConfig())
        eng.run()
        (record,) = eng.records
        assert record.outcome == "done"
        assert record.metrics.elapsed == solo.elapsed
        assert record.metrics.retransmits == solo.retransmits


def small_tenants(load=1.0):
    return [
        TenantSpec(
            name="a",
            rate=0.05 * load,
            workloads=("webdataScan",),
            max_input_bytes=128 * MiB,
        ),
        TenantSpec(
            name="b",
            rate=0.02 * load,
            runtime="mixed",
            mpid_fraction=0.5,
            workloads=("combiner",),
            max_input_bytes=128 * MiB,
        ),
    ]


class TestDeterminism:
    def test_same_seed_same_report(self):
        reports = [
            MultiTenantEngine(small_tenants(), seed=2011, horizon=300.0).run()
            for _ in range(2)
        ]
        assert json.dumps(reports[0], sort_keys=True) == json.dumps(
            reports[1], sort_keys=True
        )

    def test_streamed_trace_stores_byte_identical(self, tmp_path):
        from repro.obs.store import TraceStoreWriter

        paths = []
        for i in range(2):
            path = tmp_path / f"run{i}.jsonl"
            eng = MultiTenantEngine(
                small_tenants(), seed=2011, horizon=300.0, observe=True
            )
            eng.setup()
            writer = TraceStoreWriter(path)
            writer.attach(eng.sim.obs)
            eng.run()
            writer.close()
            paths.append(path)
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_different_seed_different_traffic(self):
        r1 = MultiTenantEngine(small_tenants(), seed=2011, horizon=300.0).run()
        r2 = MultiTenantEngine(small_tenants(), seed=2012, horizon=300.0).run()
        assert r1["offered"] != r2["offered"]


class TestOverload:
    def test_twice_capacity_completes_with_shedding(self):
        """The acceptance scenario: ≥2x offered load finishes without
        deadlock, sheds deterministically, and accounts every job."""
        queues = [
            QueueConfig(name="a", capacity=0.5, max_queued=4, max_running=2),
            QueueConfig(name="b", capacity=0.5, max_queued=4, max_running=2),
        ]
        reports = []
        for _ in range(2):
            eng = MultiTenantEngine(
                small_tenants(load=8.0),
                queues=queues,
                hadoop_config=HadoopConfig(map_slots=2, reduce_slots=2),
                seed=2011,
                horizon=400.0,
            )
            reports.append(eng.run())
        report = reports[0]
        assert report["jobs"] > 30
        assert report["shed"] > 0
        assert report["unfinished"] == 0
        assert (
            report["completed"] + report["failed"] + report["shed"]
            == report["jobs"]
        )
        # Shedding is part of the deterministic contract, not noise.
        assert json.dumps(reports[0], sort_keys=True) == json.dumps(
            reports[1], sort_keys=True
        )

    def test_slo_metrics_populated(self):
        eng = MultiTenantEngine(small_tenants(2.0), seed=2011, horizon=300.0)
        report = eng.run()
        for slo in report["tenants"].values():
            assert slo["latency_p50"] <= slo["latency_p95"] <= slo["latency_p99"]
            assert slo["queue_wait_p50"] <= slo["queue_wait_p99"]
            assert slo["slot_seconds"] > 0
            assert 0 <= slo["utilization"] <= 1


class TestChaosUnderLoad:
    def test_crashes_and_straggler_account_exactly(self):
        plan = FaultPlan(
            specs=(
                NodeCrash(node=3, at=60.0, restart_after=60.0),
                NodeCrash(node=5, at=150.0, restart_after=90.0),
                Straggler(node=2, at=30.0, factor=4.0, duration=120.0),
            ),
            seed=2011,
        )
        eng = MultiTenantEngine(
            small_tenants(2.0), fault_plan=plan, seed=2011, horizon=300.0
        )
        report = eng.run()
        assert report["unfinished"] == 0
        total = sum(
            slo["submitted"] for slo in report["tenants"].values()
        )
        assert total == report["jobs"] == len(eng.records)
        assert (
            report["completed"] + report["failed"] + report["shed"] == total
        )

    def test_storage_faults_rejected(self):
        plan = FaultPlan(specs=(DiskFailure(rate=0.001),), seed=1)
        with pytest.raises(ValueError, match="storage"):
            MultiTenantEngine(small_tenants(), fault_plan=plan)


class TestPreemption:
    def test_entitlement_drop_triggers_requeue(self):
        """A job that ramped to the full cluster gets slots clawed back
        when a competitor arrives — and still finishes afterwards."""
        slowmap = WorkloadProfile(
            name="slowmap",
            map_cpu_per_byte=1.0 / (2 * MiB),
            map_selectivity=0.5,
            reduce_cpu_per_byte=1.0 / (25 * MiB),
            reduce_selectivity=1.0,
        )
        eng = MultiTenantEngine(
            [],
            queues=[QueueConfig(name="default")],
            scheduler=SchedulerConfig(preemption_interval=10.0),
            hadoop_config=HadoopConfig(map_slots=2, reduce_slots=2),
            seed=2011,
        )
        eng.add_job(
            JobSpec(name="hog", input_bytes=1 * GiB, profile=slowmap), at=0.0
        )
        eng.add_job(
            JobSpec(name="late", input_bytes=128 * MiB, profile=slowmap),
            at=25.0,
        )
        report = eng.run()
        assert report["preemptions"]["map"] > 0
        hog = next(r for r in eng.records if r.name == "hog")
        assert hog.outcome == "done"
        assert hog.maps_preempted > 0

    def test_preemption_off_means_no_kills(self):
        eng = MultiTenantEngine(
            small_tenants(2.0),
            scheduler=SchedulerConfig(preemption=False),
            seed=2011,
            horizon=200.0,
        )
        report = eng.run()
        assert report["preemptions"] == {"map": 0, "reduce": 0}


class TestSubmissionApi:
    def test_unknown_runtime_rejected(self):
        eng = MultiTenantEngine([])
        with pytest.raises(ValueError, match="runtime"):
            eng.add_job(wordcount(), runtime="spark")

    def test_unknown_tenant_needs_default_queue(self):
        eng = MultiTenantEngine(
            [TenantSpec(name="a")],
        )
        with pytest.raises(ValueError, match="default"):
            eng.add_job(wordcount(), tenant="ghost")

    def test_tenant_on_unknown_queue_rejected(self):
        with pytest.raises(ValueError, match="unknown queue"):
            MultiTenantEngine(
                [TenantSpec(name="a", queue="vip")],
                queues=[QueueConfig(name="other")],
            )
