"""Arrival-stream determinism and shape tests."""

import pytest

from repro.cluster import TenantSpec, build_arrivals, tenant_arrivals
from repro.cluster.arrivals import merge_streams, offered_load_summary
from repro.util.units import MiB


def spec(**kw):
    defaults = dict(name="t", rate=0.05)
    defaults.update(kw)
    return TenantSpec(**defaults)


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = tenant_arrivals(spec(), seed=7, horizon=3600)
        b = tenant_arrivals(spec(), seed=7, horizon=3600)
        assert a == b

    def test_different_seed_different_stream(self):
        a = tenant_arrivals(spec(), seed=7, horizon=3600)
        b = tenant_arrivals(spec(), seed=8, horizon=3600)
        assert a != b

    def test_tenant_streams_independent(self):
        """Adding tenant B never perturbs tenant A's stream."""
        a = tenant_arrivals(spec(name="a"), seed=7, horizon=3600)
        both = build_arrivals(
            [spec(name="a"), spec(name="b")], seed=7, horizon=3600
        )
        assert [x for x in both if x.tenant == "a"] == a

    def test_attrs_survive_profile_change(self):
        """Workload draws come from their own stream: reshaping the
        arrival process must not reshuffle the first job's attributes."""
        a = tenant_arrivals(spec(profile="poisson"), seed=7, horizon=3600)
        b = tenant_arrivals(spec(profile="bursty"), seed=7, horizon=3600)
        assert a[0].workload == b[0].workload
        assert a[0].input_bytes == b[0].input_bytes


class TestShapes:
    @pytest.mark.parametrize("profile", ["poisson", "diurnal", "bursty"])
    def test_times_sorted_within_horizon(self, profile):
        arrivals = tenant_arrivals(
            spec(profile=profile, rate=0.1), seed=11, horizon=1800
        )
        times = [a.time for a in arrivals]
        assert times == sorted(times)
        assert all(0 <= t < 1800 for t in times)

    def test_rate_roughly_respected(self):
        arrivals = tenant_arrivals(
            spec(rate=0.1), seed=11, horizon=20000
        )
        assert 0.05 * 20000 < len(arrivals) < 0.2 * 20000

    def test_mixed_runtime_produces_both(self):
        arrivals = tenant_arrivals(
            spec(rate=0.1, runtime="mixed", mpid_fraction=0.5),
            seed=11,
            horizon=5000,
        )
        runtimes = {a.runtime for a in arrivals}
        assert runtimes == {"hadoop", "mpid"}

    def test_input_bytes_within_bounds(self):
        arrivals = tenant_arrivals(
            spec(rate=0.1, min_input_bytes=64 * MiB, max_input_bytes=128 * MiB),
            seed=11,
            horizon=5000,
        )
        assert arrivals
        for a in arrivals:
            assert 64 * MiB <= a.input_bytes <= 128 * MiB

    def test_job_names_unique(self):
        arrivals = build_arrivals(
            [spec(name="a", rate=0.1), spec(name="b", rate=0.1)],
            seed=11,
            horizon=2000,
        )
        names = [a.job_name for a in arrivals]
        assert len(set(names)) == len(names)


class TestMergeAndSummary:
    def test_merge_order_is_total(self):
        a = tenant_arrivals(spec(name="a", rate=0.05), seed=5, horizon=2000)
        b = tenant_arrivals(spec(name="b", rate=0.05), seed=5, horizon=2000)
        merged = merge_streams([a, b])
        keys = [(x.time, x.tenant, x.index) for x in merged]
        assert keys == sorted(keys)

    def test_summary_counts(self):
        arrivals = build_arrivals(
            [spec(name="a", rate=0.05), spec(name="b", rate=0.05, runtime="mpid")],
            seed=5,
            horizon=2000,
        )
        s = offered_load_summary(arrivals)
        assert s["jobs"] == len(arrivals)
        assert s["by_tenant"]["a"] + s["by_tenant"]["b"] == s["jobs"]
        assert s["mpid_jobs"] == s["by_tenant"]["b"]


class TestValidation:
    def test_bad_profile(self):
        with pytest.raises(ValueError, match="profile"):
            spec(profile="weekly")

    def test_bad_rate(self):
        with pytest.raises(ValueError, match="rate"):
            spec(rate=0.0)

    def test_bad_workload(self):
        with pytest.raises(ValueError, match="GridMix"):
            spec(workloads=("terasort",))

    def test_bad_runtime(self):
        with pytest.raises(ValueError, match="runtime"):
            spec(runtime="spark")

    def test_duplicate_tenants(self):
        with pytest.raises(ValueError, match="duplicate"):
            build_arrivals([spec(name="a"), spec(name="a")], seed=1, horizon=10)

    def test_bad_horizon(self):
        with pytest.raises(ValueError, match="horizon"):
            tenant_arrivals(spec(), seed=1, horizon=0)
