"""Tests for the seed-robustness experiment."""

import pytest

from repro.experiments.robustness import format_report, run


class TestRobustness:
    @pytest.fixture(scope="class")
    def result(self):
        return run(seeds=(1, 2, 3), input_gb=1)

    def test_one_entry_per_seed(self, result):
        assert len(result.fig6_ratios) == 3
        assert len(result.table1_fracs) == 3
        assert len(result.localities) == 3

    def test_mpid_wins_for_every_seed(self, result):
        assert all(r < 1.0 for r in result.fig6_ratios)

    def test_copy_fraction_stable(self, result):
        mean, std = result.stats(result.table1_fracs)
        assert 0 < mean < 1
        assert std < 0.15  # placement noise, not regime change

    def test_locality_high_with_replication(self, result):
        assert min(result.localities) > 0.8

    def test_report_renders(self, result):
        out = format_report(result)
        assert "placement" in out and "mean" in out
