"""The lossy-network sweep: structure, determinism, and its exporters."""

import math

from repro.experiments import export, network_faults

_KW = dict(
    input_gb=0.5,
    seeds=(2011,),
    rates_per_link_hour=(900.0,),
    partition_durations=(2.0,),
)


def _tiny():
    return network_faults.run(**_KW)


class TestSweep:
    def test_structure_and_degradation(self):
        r = _tiny()
        assert r.hadoop_clean > 0 and r.mpid_clean > 0
        assert set(r.hadoop) == set(r.mpid) == set(r.mpid_reliable) == {900.0}
        assert set(r.hadoop_partition) == {2.0}
        # Faults never speed a run up.
        assert r.hadoop[900.0] >= r.hadoop_clean
        assert r.hadoop_degradation(900.0) >= 1.0
        if not math.isinf(r.mpid[900.0]):
            assert r.mpid_degradation(900.0) >= 1.0
        shuffle = r.hadoop_shuffle[900.0]
        assert set(shuffle) == {
            "fetch_retries",
            "fetch_failures",
            "maps_reexecuted_for_fetch",
        }
        assert shuffle["fetch_retries"] > 0
        assert r.partition_at > 0

    def test_sweep_is_deterministic(self):
        a = export.network_faults_json(_tiny())
        b = export.network_faults_json(_tiny())
        assert a == b

    def test_report_renders(self):
        text = network_faults.format_report(_tiny())
        assert "lossy network" in text
        assert "900" in text


class TestCrossover:
    def _result(self, hadoop, mpid):
        r = network_faults.NetworkFaultsResult(
            input_gb=1.0,
            rates_per_link_hour=tuple(sorted(hadoop)),
            partition_durations=(),
            seeds=(1,),
        )
        r.hadoop, r.mpid = hadoop, mpid
        return r

    def test_interpolated_crossover(self):
        r = self._result(
            hadoop={10.0: 30.0, 20.0: 30.0}, mpid={10.0: 25.0, 20.0: 45.0}
        )
        # diff = mpid - hadoop: -5 at 10, +15 at 20 -> zero 1/4 in.
        assert r.crossover_rate() == 12.5

    def test_no_crossover(self):
        r = self._result(
            hadoop={10.0: 30.0, 20.0: 35.0}, mpid={10.0: 25.0, 20.0: 30.0}
        )
        assert r.crossover_rate() is None

    def test_dnf_hadoop_resets_bracket(self):
        inf = float("inf")
        r = self._result(
            hadoop={10.0: inf, 20.0: 30.0}, mpid={10.0: 25.0, 20.0: 50.0}
        )
        # No finite left bracket: the crossover snaps to the first rate
        # where Hadoop finishes and wins.
        assert r.crossover_rate() == 20.0


class TestExporters:
    def test_csv_rows_match_header(self):
        header, rows = export.network_faults_csv(_tiny())
        assert header[0] == "kills_per_link_hour"
        assert rows[0][0] == 0.0  # the clean row leads
        assert all(len(row) == len(header) for row in rows)
        assert len(rows) == 2

    def test_json_shape(self):
        doc = export.network_faults_json(_tiny())
        assert doc["experiment"] == "network_faults"
        assert set(doc["loss"]) == {"900.0"}
        assert set(doc["partition"]) == {"2.0"}
        assert doc["crossover_rate_per_link_hour"] is None or (
            doc["crossover_rate_per_link_hour"] > 0
        )
        row = doc["loss"]["900.0"]
        assert row["hadoop_s"] is None or row["hadoop_s"] > 0
