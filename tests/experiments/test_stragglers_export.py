"""Stragglers experiment plumbing: seeds sweep, exports, traced run."""

import json

import pytest

from repro.experiments import stragglers


@pytest.fixture(scope="module")
def results():
    return stragglers.sweep(input_gb=1, slowdown=6.0, seeds=(2011, 2012))


class TestSweep:
    def test_one_result_per_seed(self, results):
        assert sorted(results) == [2011, 2012]
        for r in results.values():
            assert r.degraded.elapsed > r.healthy.elapsed


class TestExports:
    def test_rows_cover_scenarios(self, results):
        header, rows = stragglers.to_rows(results)
        assert len(rows) == 2 * 3  # seeds x scenarios
        assert "spec_reduce_attempts" in header
        scenarios = {row[1] for row in rows}
        assert scenarios == {"healthy", "degraded", "speculative"}

    def test_json_has_full_histories(self, results):
        blob = stragglers.to_json(results)
        assert blob["experiment"] == "stragglers"
        run = blob["runs"]["2011"]
        assert run["speculative"]["speculative_attempts"] >= 0
        assert 0 <= run["degradation_x"]

    def test_export_writes_files(self, results, tmp_path):
        paths = stragglers.export(results, tmp_path)
        assert {p.name for p in paths} == {"stragglers.csv", "stragglers.json"}
        for p in paths:
            assert p.stat().st_size > 0


class TestTracedRun:
    def test_trace_and_manifest_written(self, tmp_path):
        trace = tmp_path / "stragglers.json"
        metrics = stragglers.write_traced_run(str(trace), input_gb=1)
        assert metrics.elapsed > 0
        assert trace.stat().st_size > 0
        manifest = json.loads(
            (tmp_path / "stragglers.json.manifest.json").read_text()
        )
        assert manifest["experiment"] == "stragglers"


class TestCli:
    def test_main_with_seeds_and_out(self, capsys, tmp_path):
        rc = stragglers.main(
            ["--gb", "1", "--seeds", "2011,2012", "--out", str(tmp_path)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "across seeds 2011,2012" in out
        assert (tmp_path / "stragglers.csv").exists()
