"""The fault-tolerance experiment: sweep structure, report, CSV export."""

import math

import pytest

from repro.experiments import fault_tolerance
from repro.experiments.export import fault_tolerance_csv, render_csv
from repro.hadoop import HadoopConfig, run_hadoop_job
from repro.mrmpi import run_mpid_job


@pytest.fixture(scope="module")
def small_result():
    return fault_tolerance.run(
        input_gb=1, seeds=(2011,), rates_per_hour=(10.0, 40.0, 160.0)
    )


class TestRun:
    def test_structure(self, small_result):
        r = small_result
        assert r.rates_per_hour == (10.0, 40.0, 160.0)
        assert set(r.hadoop) == set(r.mpid) == {10.0, 40.0, 160.0}
        assert r.hadoop_clean > r.mpid_clean > 0  # the Fig-6 ordering

    def test_clean_baselines_match_direct_runs(self, small_result):
        spec = fault_tolerance._spec(1)
        cfg = HadoopConfig(
            map_slots=7, reduce_slots=7, tasktracker_expiry_interval=60.0
        )
        assert small_result.hadoop_clean == pytest.approx(
            run_hadoop_job(spec, config=cfg, seed=2011).elapsed
        )
        assert small_result.mpid_clean == pytest.approx(
            run_mpid_job(spec, config=fault_tolerance.MrMpiConfig(
                num_mappers=49, num_reducers=1)).elapsed
        )

    def test_faults_never_speed_things_up(self, small_result):
        r = small_result
        for rate in r.rates_per_hour:
            assert r.hadoop[rate] >= r.hadoop_clean or math.isinf(r.hadoop[rate])
            assert r.mpid[rate] >= r.mpid_clean or math.isinf(r.mpid[rate])

    def test_deterministic(self, small_result):
        again = fault_tolerance.run(
            input_gb=1, seeds=(2011,), rates_per_hour=(10.0, 40.0, 160.0)
        )
        assert again.hadoop == small_result.hadoop
        assert again.mpid == small_result.mpid
        assert again.hadoop_faults == small_result.hadoop_faults

    def test_default_sweep_reports_a_crossover(self):
        """The acceptance headline: the default configuration must find
        the rate where Hadoop's recovery beats MPI-D's rerun."""
        r = fault_tolerance.run(seeds=(2011,))
        cross = r.crossover_rate()
        assert cross is not None
        assert r.rates_per_hour[0] <= cross <= r.rates_per_hour[-1]


class TestCrossover:
    def _mk(self, rates, hadoop, mpid):
        r = fault_tolerance.FaultToleranceResult(
            input_gb=1, rates_per_hour=tuple(rates), seeds=(1,),
            expiry_interval=60.0, restart_after=30.0, checkpoint_interval=None,
        )
        r.hadoop = dict(zip(rates, hadoop))
        r.mpid = dict(zip(rates, mpid))
        return r

    def test_interpolates_between_brackets(self):
        r = self._mk([10.0, 20.0], [100.0, 100.0], [90.0, 130.0])
        # diff goes -10 -> +30: crossing a quarter of the way in.
        assert r.crossover_rate() == pytest.approx(12.5)

    def test_mpid_dnf_counts_as_crossover(self):
        r = self._mk([10.0, 20.0], [100.0, 120.0], [90.0, float("inf")])
        assert r.crossover_rate() == 20.0

    def test_no_crossover_returns_none(self):
        r = self._mk([10.0, 20.0], [100.0, 110.0], [50.0, 60.0])
        assert r.crossover_rate() is None

    def test_hadoop_dnf_is_not_a_win(self):
        r = self._mk([10.0, 20.0], [float("inf"), float("inf")], [50.0, 60.0])
        assert r.crossover_rate() is None


class TestReport:
    def test_report_renders(self, small_result):
        text = fault_tolerance.format_report(small_result)
        assert "Fault tolerance" in text
        assert "crashes/node-hr" in text
        assert "0 (clean)" in text
        assert ("crossover" in text) or ("no crossover" in text)
        assert "expiry lowered" in text

    def test_dnf_rendered_not_inf(self):
        assert fault_tolerance._fmt_time(float("inf"), 2, 3) == "DNF (2/3)"
        assert fault_tolerance._fmt_time(10.0, 1, 3) == "10.0*"
        assert fault_tolerance._fmt_time(10.0, 0, 3) == "10.0"


class TestCsvExport:
    def test_shape_and_rendering(self, small_result):
        header, rows = fault_tolerance_csv(small_result)
        assert header[0] == "crashes_per_node_hour"
        assert len(rows) == 1 + len(small_result.rates_per_hour)
        assert rows[0][0] == 0.0  # the clean baseline row
        for row in rows:
            assert len(row) == len(header)
            for cell in row:  # inf must never leak into the CSV
                if isinstance(cell, str):
                    continue  # DNF blanks and the failure-why text
                assert not math.isinf(cell)
        text = render_csv(header, rows)
        assert text.splitlines()[0].startswith("crashes_per_node_hour,")
        assert "inf" not in text
