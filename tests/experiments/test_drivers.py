"""Experiment driver tests: each figure/table regenerates with the
paper's shape at reduced scale."""

import pytest

from repro.experiments import paper
from repro.experiments.fig1_shuffle import format_report as fig1_report
from repro.experiments.fig1_shuffle import run as fig1_run
from repro.experiments.fig2_latency import Fig2Result, format_report as fig2_report
from repro.experiments.fig2_latency import panel_sizes, run as fig2_run
from repro.experiments.fig3_bandwidth import format_report as fig3_report
from repro.experiments.fig3_bandwidth import run as fig3_run
from repro.experiments.fig6_wordcount import format_report as fig6_report
from repro.experiments.fig6_wordcount import run as fig6_run
from repro.experiments.table1_copy_pct import format_report as t1_report
from repro.experiments.table1_copy_pct import run as t1_run
from repro.util.units import GiB, KiB, MiB


class TestFig2:
    @pytest.fixture(scope="class")
    def result(self) -> Fig2Result:
        return fig2_run(trials=30)

    def test_panels_cover_paper_ranges(self):
        assert panel_sizes("a")[0] == 1
        assert panel_sizes("a")[-1] == 1 * KiB
        assert panel_sizes("c")[-1] == 64 * MiB

    def test_ratio_shape(self, result):
        assert result.ratio(1) == pytest.approx(paper.FIG2_RATIO_1B, rel=0.15)
        assert result.ratio(1 * MiB) == pytest.approx(paper.FIG2_RATIO_1MB, rel=0.15)
        assert result.ratio(512 * KiB) > 90

    def test_report_renders(self, result):
        out = fig2_report(result)
        assert "Figure 2(a)" in out and "Figure 2(c)" in out
        assert "RPC/MPI" in out


class TestFig3:
    @pytest.fixture(scope="class")
    def result(self):
        return fig3_run(jitter=False)

    def test_peaks_match_paper(self, result):
        assert result.peak("Hadoop RPC") < 2e6
        assert result.peak("HTTP/Jetty") == pytest.approx(paper.FIG3_JETTY_PEAK, rel=0.05)
        assert result.peak("MPICH2") == pytest.approx(paper.FIG3_MPICH_PEAK, rel=0.05)

    def test_mpich_beats_jetty_slightly(self, result):
        assert 1.0 < result.peak("MPICH2") / result.peak("HTTP/Jetty") < 1.06

    def test_nio_series_optional(self):
        with_nio = fig3_run(include_nio=True, jitter=False)
        assert "Socket/NIO" in with_nio.series

    def test_report_renders(self, result):
        out = fig3_report(result)
        assert "MPICH2" in out and "peak" in out


class TestFig1:
    @pytest.fixture(scope="class")
    def metrics(self):
        return fig1_run(input_bytes=4 * GiB)

    def test_sort_stage_tiny(self, metrics):
        assert float(metrics.sort_times().mean()) < 0.1

    def test_copy_exceeds_sort_everywhere(self, metrics):
        assert (metrics.copy_times() > metrics.sort_times()).all()

    def test_report_renders(self, metrics):
        out = fig1_report(metrics)
        assert "copy" in out and "reducers" in out


class TestTable1:
    @pytest.fixture(scope="class")
    def result(self):
        return t1_run(sizes_gb=(1, 4))

    def test_grid_shape(self, result):
        assert set(result.cells) == {1, 4}
        assert set(result.cells[1]) == {"4/2", "4/4", "8/8", "16/16"}

    def test_copy_share_grows_with_size(self, result):
        for cfg in ("4/4", "8/8"):
            assert result.cells[4][cfg] > result.cells[1][cfg]

    def test_fractions_in_range(self, result):
        for row in result.cells.values():
            for v in row.values():
                assert 0.0 < v < 1.0

    def test_report_renders(self, result):
        out = t1_report(result)
        assert "Table I" in out and "Paper's Table I" in out


class TestFig6:
    @pytest.fixture(scope="class")
    def result(self):
        return fig6_run(sizes_gb=(1, 4))

    def test_mpid_faster_everywhere(self, result):
        for gb in result.sizes_gb:
            assert result.mpid[gb] < result.hadoop[gb]

    def test_ratio_rises_with_scale(self, result):
        assert result.ratio(1) < result.ratio(4)

    def test_report_renders(self, result):
        out = fig6_report(result)
        assert "WordCount" in out and "MPI-D/Hadoop" in out


class TestMains:
    def test_fig2_main_runs(self, capsys):
        from repro.experiments.fig2_latency import main

        assert main(["--trials", "5"]) == 0
        assert "Figure 2" in capsys.readouterr().out

    def test_fig3_main_runs(self, capsys):
        from repro.experiments.fig3_bandwidth import main

        assert main(["--no-jitter"]) == 0
        assert "Figure 3" in capsys.readouterr().out
