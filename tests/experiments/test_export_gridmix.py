"""Tests for the CSV export module and the GridMix suite."""

import csv

import pytest

from repro.experiments.export import (
    fig2_csv,
    fig3_csv,
    fig6_csv,
    render_csv,
    table1_csv,
)
from repro.experiments.fig6_wordcount import run as fig6_run
from repro.experiments.gridmix import format_report, run as gridmix_run
from repro.experiments.table1_copy_pct import run as t1_run
from repro.workloads.gridmix_suite import GRIDMIX_SUITE, suite_by_name


class TestCsvExports:
    def test_fig2_csv_shape(self):
        header, rows = fig2_csv()
        assert header == ["size_bytes", "hadoop_rpc_s", "mpich2_s", "ratio"]
        assert all(len(r) == 4 for r in rows)
        assert rows[0][0] == 1

    def test_fig3_csv_has_all_series(self):
        header, rows = fig3_csv()
        assert "Hadoop_RPC" in header and "MPICH2" in header
        assert "Socket_NIO" in header  # exported with the NIO series
        assert len(rows) == 27  # packet sizes 2^0..2^26

    def test_table1_csv_roundtrips_through_csv_module(self):
        header, rows = table1_csv(t1_run(sizes_gb=(1, 2)))
        text = render_csv(header, rows)
        parsed = list(csv.reader(text.splitlines()))
        assert parsed[0] == header
        assert len(parsed) == 3

    def test_fig6_csv(self):
        header, rows = fig6_csv(fig6_run(sizes_gb=(1,)))
        assert rows[0][0] == 1
        assert rows[0][3] < 1.0  # MPI-D faster

    def test_export_all_writes_files(self, tmp_path):
        # Only check the cheap exporters through the file path; patch the
        # registry down to two to keep the test fast.
        from repro.experiments import export as mod

        small = {
            "fig2_latency.csv": mod.fig2_csv,
            "fig3_bandwidth.csv": mod.fig3_csv,
        }
        original, original_json = mod.EXPORTS, mod.JSON_EXPORTS
        mod.EXPORTS, mod.JSON_EXPORTS = small, {}
        try:
            written = mod.export_all(tmp_path / "out")
        finally:
            mod.EXPORTS, mod.JSON_EXPORTS = original, original_json
        assert len(written) == 2
        for path in written:
            assert path.exists() and path.stat().st_size > 0

    def test_export_only_filters_and_validates(self, tmp_path):
        from repro.experiments import export as mod

        small = {
            "fig2_latency.csv": mod.fig2_csv,
            "fig3_bandwidth.csv": mod.fig3_csv,
        }
        original, original_json = mod.EXPORTS, mod.JSON_EXPORTS
        mod.EXPORTS, mod.JSON_EXPORTS = small, {}
        try:
            written = mod.export_all(tmp_path / "out",
                                     only={"fig2_latency.csv"})
            assert [p.name for p in written] == ["fig2_latency.csv"]
            with pytest.raises(ValueError, match="unknown exports"):
                mod.export_all(tmp_path / "out", only={"nope.csv"})
        finally:
            mod.EXPORTS, mod.JSON_EXPORTS = original, original_json


class TestGridmixSuite:
    def test_suite_members(self):
        names = {e.name for e in GRIDMIX_SUITE}
        assert {"javaSort", "streamSort", "combiner", "webdataScan"} <= names

    def test_suite_by_name(self):
        assert suite_by_name()["javaSort"].profile.map_selectivity == 1.0

    def test_profiles_valid(self):
        for entry in GRIDMIX_SUITE:
            assert entry.profile.map_cpu_per_byte > 0
            assert entry.reducers_per_map > 0

    @pytest.fixture(scope="class")
    def result(self):
        subset = tuple(e for e in GRIDMIX_SUITE if e.name in ("javaSort", "webdataScan"))
        return gridmix_run(input_gb=1, suite=subset)

    def test_mpid_wins_suite_wide(self, result):
        for name in result.times:
            assert result.ratio(name) < 1.0

    def test_scan_beats_sort_ratio(self, result):
        """Filter workloads (tiny shuffle) favour MPI-D even more."""
        assert result.ratio("webdataScan") <= result.ratio("javaSort") + 0.05

    def test_report_renders(self, result):
        assert "GridMix" in format_report(result)
