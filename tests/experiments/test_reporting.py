"""Reporting helper tests."""

import pytest

from repro.experiments.reporting import Table, banner, compare_to_paper, format_series


class TestTable:
    def test_render_aligns_columns(self):
        t = Table(headers=("a", "bbbb"))
        t.add_row(1, 2)
        t.add_row(100, 200)
        out = t.render()
        lines = out.splitlines()
        assert len({len(line) for line in lines}) == 1  # all same width

    def test_title_included(self):
        t = Table(headers=("x",), title="My Table")
        t.add_row(1)
        assert t.render().startswith("My Table")

    def test_row_length_checked(self):
        t = Table(headers=("a", "b"))
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_float_formatting(self):
        t = Table(headers=("v",))
        t.add_row(0.00001)
        t.add_row(123456.0)
        t.add_row(1.5)
        out = t.render()
        assert "1e-05" in out
        assert "1.5" in out


class TestCompare:
    def test_ratio_column(self):
        out = compare_to_paper([("x", 2.0, 4.0)])
        assert "0.50x" in out

    def test_missing_paper_value(self):
        out = compare_to_paper([("x", 2.0, None)])
        assert "-" in out

    def test_zero_paper_value(self):
        out = compare_to_paper([("x", 2.0, 0.0)])
        assert "x" not in out.splitlines()[-1].split("|")[-1]


class TestMisc:
    def test_banner(self):
        b = banner("Hello")
        lines = b.splitlines()
        assert lines[1] == "Hello"
        assert set(lines[0]) == {"="}

    def test_format_series(self):
        out = format_series("lat", [(1024, 0.001)])
        assert "lat" in out and "1.0 KB" in out and "1.00 ms" in out
