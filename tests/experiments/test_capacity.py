"""The capacity-planning experiment (:mod:`repro.experiments.capacity`).

The validation loop is the point of the experiment — a projection is
only as good as its re-run score — so these tests run the two gated
scenarios at reduced size and hold them to the same <=10% bar the CLI
gates on.
"""

import pytest

from repro.experiments.capacity import (
    ERROR_TARGET,
    KnobValidation,
    scenario_drop_tenant,
    scenario_queue_capacity,
)

MiB = 1 << 20


class TestGatedScenarios:
    @pytest.fixture(scope="class")
    def queue_capacity(self):
        return scenario_queue_capacity(seed=2011, jobs=3, size=32 * MiB)

    @pytest.fixture(scope="class")
    def drop_tenant(self):
        return scenario_drop_tenant(seed=2011, jobs=3, size=32 * MiB)

    def test_queue_capacity_projection_validates(self, queue_capacity):
        projection, validation = queue_capacity
        assert projection.knob == "queue_capacity"
        assert validation.gated
        assert validation.error <= ERROR_TARGET
        # Raising max_running 1 -> 3 must actually help.
        assert validation.actual < validation.baseline_observed

    def test_sequential_baseline_replays_exactly(self, queue_capacity):
        projection, _validation = queue_capacity
        assert projection.baseline_replayed == pytest.approx(
            projection.baseline_observed, rel=1e-9
        )

    def test_drop_tenant_projection_validates(self, drop_tenant):
        projection, validation = drop_tenant
        assert projection.knob == "drop_tenant"
        assert projection.tenant == "alice"
        assert validation.gated
        assert validation.error <= ERROR_TARGET

    def test_validation_serializes_with_score(self, queue_capacity):
        _projection, validation = queue_capacity
        d = validation.to_dict()
        assert d["target"] == ERROR_TARGET
        assert d["error"] == validation.error
        assert isinstance(validation, KnobValidation)


class TestReportShape:
    def test_report_counts_gated_passes(self):
        from repro.experiments.capacity import format_report

        report = {
            "experiment": "capacity",
            "seed": 2011,
            "error_target": ERROR_TARGET,
            "validations": [
                {
                    "knob": "queue_capacity", "detail": {}, "tenant": "",
                    "metric": "makespan", "baseline_observed": 10.0,
                    "baseline_replayed": 10.0, "predicted": 5.0,
                    "actual": 5.0, "error": 0.0, "gated": True,
                    "target": ERROR_TARGET,
                },
            ],
            "gated_within_target": 1,
            "gated_total": 1,
        }
        text = format_report(report)
        assert "PASS" in text
        assert "1/1" in text
