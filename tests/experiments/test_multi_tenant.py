"""Multi-tenant experiment driver: sweep, exports, traced run."""

import json

import pytest

from repro.experiments import multi_tenant


@pytest.fixture(scope="module")
def result():
    return multi_tenant.run(
        loads=(2.0,),
        policies=("fair",),
        seeds=(2011,),
        horizon=300.0,
        chaos=(False, True),
    )


class TestSweep:
    def test_overload_cells_account_every_job(self, result):
        for key, per_seed in result.cells.items():
            report = per_seed[2011]
            assert report["unfinished"] == 0
            assert (
                report["completed"] + report["failed"] + report["shed"]
                == report["jobs"]
            )

    def test_chaos_cell_ran_with_faults(self, result):
        clean = result.cells[(2.0, "fair", False)][2011]
        chaos = result.cells[(2.0, "fair", True)][2011]
        assert clean["offered"] == chaos["offered"]  # same arrivals
        assert clean["makespan"] != chaos["makespan"]

    def test_tenants_have_slo_rows(self, result):
        report = result.cells[(2.0, "fair", False)][2011]
        assert set(report["tenants"]) == {"batch", "interactive", "science"}
        for slo in report["tenants"].values():
            assert slo["latency_p50"] <= slo["latency_p99"]


class TestExports:
    def test_rows_cover_every_cell(self, result):
        header, rows = multi_tenant.to_rows(result)
        assert len(rows) == 2 * 3  # 2 cells x 3 tenants
        assert len(header) == len(rows[0])
        assert "latency_p95_s" in header

    def test_json_roundtrips(self, result):
        blob = json.dumps(multi_tenant.to_json(result), sort_keys=True)
        assert "2x-fair-chaos" in blob
        assert "2x-fair-clean" in blob

    def test_export_writes_files(self, result, tmp_path):
        paths = multi_tenant.export(result, tmp_path)
        names = {p.name for p in paths}
        assert names == {"multi_tenant.csv", "multi_tenant.json"}
        for p in paths:
            assert p.stat().st_size > 0

    def test_report_renders(self, result):
        out = multi_tenant.format_report(result)
        assert "offered load 2x" in out
        assert "chaos" in out


class TestTracedRun:
    def test_trace_and_manifest_written(self, tmp_path):
        trace = tmp_path / "tenants.json"
        report = multi_tenant.write_traced_run(str(trace), horizon=200.0)
        assert trace.stat().st_size > 0
        manifest = json.loads((tmp_path / "tenants.json.manifest.json").read_text())
        assert manifest["experiment"] == "multi_tenant"
        assert report["jobs"] > 0


class TestCli:
    def test_quick_main(self, capsys, tmp_path):
        rc = multi_tenant.main(
            [
                "--quick",
                "--horizon",
                "200",
                "--out",
                str(tmp_path),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Multi-tenant scheduling" in out
        assert (tmp_path / "multi_tenant.csv").exists()
        assert (tmp_path / "multi_tenant.json").exists()
