"""Partition-skew experiment and weighted-partition model tests."""

import pytest

from repro.experiments.skew import (
    format_report,
    measure_zipf_imbalance,
    run,
    skewed_weights,
)
from repro.hadoop import JAVASORT_PROFILE, JobSpec, run_hadoop_job
from repro.mrmpi import MrMpiConfig, run_mpid_job
from repro.util.units import GiB, MiB


class TestSkewedWeights:
    def test_shape(self):
        w = skewed_weights(4, 0.4)
        assert len(w) == 4
        assert w[0] == pytest.approx(0.4)
        assert sum(w) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            skewed_weights(4, 0.0)
        with pytest.raises(ValueError):
            skewed_weights(4, 1.0)


class TestJobSpecWeights:
    def test_normalized(self):
        spec = JobSpec(
            "s",
            input_bytes=GiB,
            profile=JAVASORT_PROFILE,
            num_reduce_tasks=2,
            partition_weights=(3.0, 1.0),
        )
        assert spec.normalized_weights(2) == [0.75, 0.25]

    def test_default_uniform(self):
        spec = JobSpec("s", input_bytes=GiB, profile=JAVASORT_PROFILE)
        assert spec.normalized_weights(4) == [0.25] * 4

    def test_length_mismatch(self):
        spec = JobSpec(
            "s",
            input_bytes=GiB,
            profile=JAVASORT_PROFILE,
            num_reduce_tasks=2,
            partition_weights=(1.0, 1.0),
        )
        with pytest.raises(ValueError, match="weights"):
            spec.normalized_weights(3)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            JobSpec(
                "s",
                input_bytes=GiB,
                profile=JAVASORT_PROFILE,
                partition_weights=(-1.0, 2.0),
            )


class TestSkewedExecution:
    def test_hadoop_hot_reducer_shuffles_more(self):
        spec = JobSpec(
            "s",
            input_bytes=512 * MiB,
            profile=JAVASORT_PROFILE,
            num_reduce_tasks=4,
            partition_weights=skewed_weights(4, 0.6),
        )
        m = run_hadoop_job(spec)
        shuffled = {r.task_id: r.shuffled_bytes for r in m.reduce_tasks}
        assert shuffled[0] > 2 * max(v for k, v in shuffled.items() if k != 0)

    def test_mpid_hot_reducer_receives_more(self):
        spec = JobSpec(
            "s",
            input_bytes=512 * MiB,
            profile=JAVASORT_PROFILE,
            num_reduce_tasks=4,
            partition_weights=skewed_weights(4, 0.6),
        )
        m = run_mpid_job(spec, config=MrMpiConfig(num_mappers=8, num_reducers=4))
        received = [r.received_bytes for r in m.reducers]
        assert received[0] > 2 * max(received[1:])

    def test_skew_slows_both_systems(self):
        result = run(input_gb=1, num_reduces=4, hot_shares=(0.25, 0.6))
        assert result.times[0.6][0] > result.times[0.25][0]
        assert result.times[0.6][1] > result.times[0.25][1]

    def test_zipf_imbalance_measurable(self):
        share = measure_zipf_imbalance(num_partitions=8, lines=500)
        assert 1.0 / 8 < share < 0.9

    def test_report_renders(self):
        result = run(input_gb=1, num_reduces=4, hot_shares=(0.25, 0.5))
        assert "skew" in format_report(result)
