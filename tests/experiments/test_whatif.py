"""Interconnect x storage what-if tests."""

import pytest

from repro.experiments.interconnect_whatif import (
    FABRICS,
    STORAGE,
    format_report,
    run,
)
from repro.util.units import MiB


class TestWhatIf:
    @pytest.fixture(scope="class")
    def result(self):
        fabrics = {k: FABRICS[k] for k in ("GigE (paper)", "IB DDR")}
        return run(input_gb=2, fabrics=fabrics)

    def test_grid_complete(self, result):
        assert len(result.times) == 4

    def test_ssd_much_faster_than_hdd(self, result):
        for fabric in ("GigE (paper)", "IB DDR"):
            hdd = result.times[(fabric, "SATA HDD (paper)")]
            ssd = result.times[(fabric, "SSD")]
            assert ssd < hdd * 0.75

    def test_fabric_never_hurts(self, result):
        for disk in STORAGE:
            gige = result.times[("GigE (paper)", disk)]
            ib = result.times[("IB DDR", disk)]
            assert ib <= gige * 1.001

    def test_fabric_effect_small_under_overlap(self, result):
        """MPI-D overlaps communication: IB gains < 20% on this workload."""
        gige = result.times[("GigE (paper)", "SSD")]
        ib = result.times[("IB DDR", "SSD")]
        assert ib > gige * 0.8

    def test_speedup_baseline(self, result):
        speed = result.speedup_vs_paper()
        assert speed[("GigE (paper)", "SATA HDD (paper)")] == pytest.approx(1.0)

    def test_report_renders(self, result):
        out = format_report(result)
        assert "What-if" in out and "SSD" in out
