"""The durability experiment: failure classification, sweep structure,
and the CSV/JSON export shape."""

import math

import pytest

from repro.experiments import durability
from repro.experiments.durability import DurabilityCell, DurabilityResult
from repro.experiments.export import (
    durability_csv,
    durability_json,
    render_csv,
)
from repro.experiments.fault_tolerance import classify_failure
from repro.util.units import MiB


class TestClassifyFailure:
    def test_block_lost_passes_through_verbatim(self):
        assert classify_failure("block_lost:input:7") == "block_lost:input:7"

    def test_map_attempts(self):
        assert classify_failure("map 3 failed 4 attempts") == "map_attempts:4"

    def test_reduce_attempts(self):
        assert (
            classify_failure("reduce 0 failed 4 attempts")
            == "reduce_attempts:4"
        )

    def test_master_lost(self):
        assert (
            classify_failure("master node 0 lost (JobTracker is a SPOF)")
            == "master_lost"
        )

    def test_all_trackers_lost(self):
        assert (
            classify_failure("all tasktrackers lost and none restarted")
            == "all_trackers_lost"
        )

    def test_unknown_and_other(self):
        assert classify_failure(None) == "unknown"
        assert classify_failure("") == "unknown"
        assert classify_failure("the magic smoke escaped") == "other"


def _fabricated():
    r = DurabilityResult(
        input_gb=1.0,
        replications=(1, 2),
        rates_per_hour=(30.0, 120.0),
        seeds=(1,),
        repair_bandwidth_cap=10 * MiB,
    )
    r.hadoop_clean = {1: 50.0, 2: 52.0}
    r.mpid_clean = 40.0
    lost = {
        "seed": 1, "reason": "block_lost:input:3",
        "kind": "block_lost:input:3", "node": 2, "task": None, "time": 6.9,
    }
    for repl in r.replications:
        for rate in r.rates_per_hour:
            # Hadoop survives everywhere; MPI-D dies everywhere but the
            # gentlest cell.
            r.hadoop[(repl, rate)] = DurabilityCell(
                survived=1, total=1, elapsed=55.0, repair_overhead=0.4,
                blocks_repaired=3.0,
            )
            survives = repl == 2 and rate == 30.0
            r.mpid[(repl, rate)] = DurabilityCell(
                survived=int(survives),
                total=1,
                elapsed=41.0 if survives else float("inf"),
                data_lost=0 if survives else 1,
            )
    r.hadoop[(1, 30.0)].failures.append(lost)
    return r


class TestCrossover:
    def test_lowest_separating_rate(self):
        r = _fabricated()
        assert r.crossover_rate(1) == 30.0
        assert r.crossover_rate(2) == 120.0

    def test_none_when_never_separated(self):
        r = _fabricated()
        for rate in r.rates_per_hour:
            r.mpid[(1, rate)] = DurabilityCell(
                survived=1, total=1, elapsed=41.0
            )
        assert r.crossover_rate(1) is None


class TestExportShape:
    def test_csv_rows_and_inf_handling(self):
        header, rows = durability_csv(_fabricated())
        assert header[0] == "replication"
        assert "hadoop_failure_why" in header
        # One clean row + one row per rate, per replication.
        assert len(rows) == 2 * (1 + 2)
        by_key = {(row[0], row[1]): row for row in rows}
        dnf = by_key[(1, 120.0)]
        assert dnf[header.index("mpid_s")] == ""  # inf never leaks
        assert dnf[header.index("mpid_data_lost")] == 1
        why = by_key[(1, 30.0)][header.index("hadoop_failure_why")]
        assert why == "seed1:block_lost:input:3@t6.9"
        text = render_csv(header, rows)
        assert text.splitlines()[0].startswith("replication,")

    def test_json_cells_and_crossovers(self):
        blob = durability_json(_fabricated())
        assert blob["experiment"] == "durability"
        assert blob["crossover_rate_per_node_hour"] == {"1": 30.0, "2": 120.0}
        cell = blob["cells"]["1x120"]
        assert cell["mpid"]["elapsed_s"] is None  # inf -> null for JSON
        assert cell["hadoop"]["survival"] == 1.0
        lost_cell = blob["cells"]["1x30"]
        assert lost_cell["hadoop"]["failures"][0]["kind"].startswith(
            "block_lost:"
        )


class TestSmallRealSweep:
    @pytest.fixture(scope="class")
    def result(self):
        return durability.run(
            input_gb=1.0,
            seeds=(2011,),
            rates_per_hour=(120.0,),
            replications=(1, 3),
        )

    def test_structure(self, result):
        assert set(result.hadoop) == set(result.mpid) == {
            (1, 120.0), (3, 120.0)
        }
        assert result.hadoop_clean[1] > 0
        assert result.mpid_clean > 0

    def test_replication_buys_mpid_survival(self, result):
        assert result.mpid[(1, 120.0)].survival == 0.0
        assert result.mpid[(1, 120.0)].data_lost == 1
        assert result.mpid[(3, 120.0)].survival == 1.0

    def test_hadoop_pays_repair_traffic(self, result):
        cell = result.hadoop[(3, 120.0)]
        assert cell.survival == 1.0
        assert cell.repair_overhead > 0
        assert cell.blocks_repaired > 0

    def test_block_lost_kind_recorded_at_replication_one(self, result):
        cell = result.hadoop[(1, 120.0)]
        if cell.failures:  # this seed's repl-1 run does die
            assert any(
                f["kind"].startswith("block_lost:") for f in cell.failures
            )

    def test_report_renders(self, result):
        text = durability.format_report(result)
        assert "replication 1" in text
        assert "disk fails/node-hr" in text
        assert not math.isnan(len(text))
