"""Tests for the observability-era exporters: JSON dumps + metric dumps."""

import pytest

from repro.experiments import fault_tolerance
from repro.experiments.export import (
    JSON_EXPORTS,
    fault_tolerance_csv,
    fault_tolerance_json,
    fig6_json,
    obs_metrics_csv,
    obs_metrics_json,
)
from repro.experiments.fig6_wordcount import run as fig6_run
from repro.obs import Observer


@pytest.fixture(scope="module")
def fig6_result():
    return fig6_run(sizes_gb=(1,))


@pytest.fixture(scope="module")
def fault_result():
    return fault_tolerance.run(
        input_gb=1,
        seeds=(2011,),
        rates_per_hour=(40.0,),
        keep_task_records=True,
    )


class TestFig6Json:
    def test_shape(self, fig6_result):
        data = fig6_json(fig6_result)
        assert data["experiment"] == "fig6_wordcount"
        assert data["sizes_gb"] == [1]
        assert set(data["hadoop"]) == {"1"} and set(data["mpid"]) == {"1"}

    def test_carries_per_task_records(self, fig6_result):
        data = fig6_json(fig6_result)
        hadoop = data["hadoop"]["1"]
        assert hadoop["map_tasks"], "per-map phase records must be present"
        assert hadoop["reduce_tasks"]
        assert data["mpid"]["1"]  # MrMpiMetrics.to_dict payload

    def test_registered_for_export_all(self):
        assert "fig6_wordcount.json" in JSON_EXPORTS
        assert "fault_tolerance.json" in JSON_EXPORTS


class TestFaultToleranceExports:
    def test_csv_has_mpid_wasted_column(self, fault_result):
        header, rows = fault_tolerance_csv(fault_result)
        wasted = header.index("mpid_wasted_task_s")
        assert header[-1] == "hadoop_failure_why"
        assert all(len(r) == len(header) for r in rows)
        clean, faulted = rows[0], rows[1]
        assert clean[0] == 0.0 and clean[wasted] == 0.0 and clean[-1] == ""
        assert faulted[0] == 40.0

    def test_json_shape(self, fault_result):
        data = fault_tolerance_json(fault_result)
        assert data["experiment"] == "fault_tolerance"
        assert data["rates_per_hour"] == [40.0]
        # Clean-run records ride along under rate 0.0.
        assert set(data["hadoop_task_records"]) == {"0.0", "40.0"}
        faults = data["mpid_faults"]["40.0"]
        assert "wasted_task_seconds" in faults
        assert data["mpid_wasted_task_seconds"]["40.0"] == pytest.approx(
            faults["wasted_task_seconds"]
        )

    def test_mpid_wasted_consistent_with_fault_summary(self, fault_result):
        # The 1 GB MPI-D job is so short the seeded crash timeline may
        # miss it entirely; either way the accounting must be coherent:
        # zero restarts means zero waste, restarts mean positive waste.
        restarts = fault_result.mpid_restarts[40.0]
        wasted = fault_result.mpid_wasted[40.0]
        assert wasted == pytest.approx(
            fault_result.mpid_faults[40.0]["wasted_task_seconds"]
        )
        assert (wasted > 0.0) == (restarts > 0)


class TestObsMetricsDumps:
    @pytest.fixture
    def observer(self):
        clock_t = [0.0]
        obs = Observer(clock=lambda: clock_t[0])
        obs.metrics.counter("net.bytes").add(64)
        obs.metrics.histogram("slots").set(3)
        clock_t[0] = 2.0
        return obs

    def test_csv_rows(self, observer):
        header, rows = obs_metrics_csv(observer)
        assert header == [
            "metric", "type", "value", "mean", "min", "max",
            "p50", "p95", "p99", "events",
        ]
        assert [r[0] for r in rows] == ["net.bytes", "slots"]
        by_name = {r[0]: dict(zip(header, r)) for r in rows}
        # Counters carry no distribution, so the percentile cells stay blank;
        # histograms report duration-weighted quantiles.
        assert by_name["net.bytes"]["p50"] == ""
        assert by_name["slots"]["p50"] == 3.0

    def test_json_dump(self, observer):
        data = obs_metrics_json(observer)
        assert data["net.bytes"] == {"type": "counter", "value": 64.0, "events": 1}
        assert data["slots"]["mean"] == pytest.approx(3.0)


class TestCriticalPathExport:
    @pytest.fixture(scope="class")
    def cp_result(self):
        from repro.experiments import critical_path

        return critical_path.run(sizes_gb=(0.25,))

    def test_csv_rows_carry_phase_blame(self, cp_result):
        from repro.experiments.export import critical_path_csv

        header, rows = critical_path_csv(cp_result)
        assert header[:2] == ["input_gb", "makespan_s"]
        assert "copy_blame_pct" in header and "map_blame_pct" in header
        (row,) = rows
        blame = dict(zip(header, row))
        total = sum(
            v for k, v in blame.items() if k.endswith("_blame_pct")
        )
        assert total == pytest.approx(100.0)

    def test_json_cross_check_is_tight(self, cp_result):
        from repro.experiments.export import critical_path_json

        data = critical_path_json(cp_result)
        assert data["experiment"] == "critical_path"
        (row,) = data["rows"]
        # Span-measured Table-I copy share must match the JobMetrics
        # counters (the ISSUE's +-2 pts acceptance bound).
        assert row["cross_check_delta_pts"] < 2.0
        assert row["copy_pct_spans"] == pytest.approx(
            row["copy_pct_counters"], abs=2.0
        )
