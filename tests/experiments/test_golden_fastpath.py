"""Golden determinism: experiment exports are solver-independent.

The fast max-min solver is only admissible because it changes *nothing*
observable: every experiment export must serialise byte-identically
under the fast and reference solvers, and identically across two
same-seed runs of the same solver.  These are the end-to-end twins of
the per-step differential tests in ``tests/simnet``.
"""

from __future__ import annotations

import json
from dataclasses import asdict

import pytest

from repro.simnet.network import use_solver


def _fig6_export(size_gb=1.0, seed=2011):
    from repro.experiments import fig6_wordcount as f6

    res = f6.run(sizes_gb=(size_gb,), seed=seed)
    return json.dumps(
        {"hadoop": res.hadoop_metrics, "mpid": res.mpid_metrics},
        sort_keys=True,
    )


def _network_faults_export(seed=2011):
    from repro.experiments import network_faults as nf

    res = nf.run(
        input_gb=0.25,
        seeds=(seed,),
        rates_per_link_hour=(900.0,),
        partition_durations=(5.0,),
    )
    return json.dumps(asdict(res), sort_keys=True, default=str)


class TestFig6Golden:
    def test_fast_matches_reference_bit_for_bit(self):
        fast = _fig6_export()
        with use_solver("reference"):
            ref = _fig6_export()
        assert fast == ref

    def test_same_seed_rerun_is_identical(self):
        assert _fig6_export() == _fig6_export()

    def test_seeds_actually_differ(self):
        # Guards the golden checks against a trivially-constant export.
        assert _fig6_export(seed=2011) != _fig6_export(seed=2012)


class TestNetworkFaultsGolden:
    def test_fast_matches_reference_bit_for_bit(self):
        fast = _network_faults_export()
        with use_solver("reference"):
            ref = _network_faults_export()
        assert fast == ref

    def test_same_seed_rerun_is_identical(self):
        assert _network_faults_export() == _network_faults_export()


@pytest.mark.slow
def test_fig6_10gb_fast_matches_reference():
    fast = _fig6_export(size_gb=10.0)
    with use_solver("reference"):
        ref = _fig6_export(size_gb=10.0)
    assert fast == ref
