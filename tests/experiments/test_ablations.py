"""Tests for the ablation and scalability experiments."""

import pytest

from repro.experiments.ablation_combiner import format_report as comb_report
from repro.experiments.ablation_combiner import run as comb_run
from repro.experiments.ablation_partition import format_report as part_report
from repro.experiments.ablation_partition import run as part_run
from repro.experiments.ablation_scheduling import format_report as sched_report
from repro.experiments.ablation_scheduling import run as sched_run
from repro.experiments.scalability import format_report as scale_report
from repro.experiments.scalability import run as scale_run
from repro.util.units import KiB


class TestCombinerAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return comb_run(corpus_bytes=20_000, sim_gb=2)

    def test_answers_identical(self, result):
        assert result.answers_equal

    def test_combining_reduces_bytes(self, result):
        assert result.combined_bytes < result.plain_bytes
        assert result.byte_reduction > 0.5

    def test_combining_reduces_sim_time(self, result):
        assert result.sim_combined_s < result.sim_plain_s

    def test_report_renders(self, result):
        assert "combining removed" in comb_report(result)


class TestPartitionAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return part_run(sizes=(1 * KiB, 64 * KiB), sim_gb=1)

    def test_correctness_size_independent(self, result):
        assert result.all_answers_equal

    def test_smaller_arrays_more_messages(self, result):
        assert result.messages[1 * KiB] > result.messages[64 * KiB]

    def test_report_renders(self, result):
        assert "partition-array size" in part_report(result)


class TestSchedulingAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return sched_run(small_gb=1, large_gb=2, grid=((1, 3.0), (8, 1.0)))

    def test_grid_covered(self, result):
        assert set(result.cells) == {(1, 3.0), (8, 1.0)}

    def test_aggressive_scheduling_helps_small_jobs(self, result):
        slow = result.cells[(1, 3.0)][0]
        fast = result.cells[(8, 1.0)][0]
        assert fast < slow

    def test_report_renders(self, result):
        assert "heartbeat" in sched_report(result)


class TestScalability:
    @pytest.fixture(scope="class")
    def result(self):
        return scale_run(node_counts=(3, 6), input_gb=4)

    def test_more_nodes_faster(self, result):
        assert result.hadoop[6] < result.hadoop[3]
        assert result.mpid[6] < result.mpid[3]

    def test_mpid_wins_at_every_scale(self, result):
        for n in result.node_counts:
            assert result.mpid[n] < result.hadoop[n]

    def test_speedup_baseline_is_one(self, result):
        assert result.speedup("hadoop")[3] == pytest.approx(1.0)
        assert result.speedup("mpid")[3] == pytest.approx(1.0)

    def test_report_renders(self, result):
        assert "Scalability" in scale_report(result)
