"""Config and job-spec tests."""

import pytest

from repro.hadoop.config import HadoopConfig
from repro.hadoop.job import (
    JAVASORT_PROFILE,
    WORDCOUNT_PROFILE,
    JobSpec,
    WorkloadProfile,
)
from repro.util.units import GB, MiB


class TestHadoopConfig:
    def test_paper_defaults(self):
        cfg = HadoopConfig()
        assert cfg.block_size == 64 * MiB
        assert cfg.replication == 3
        assert cfg.heartbeat_interval == 3.0
        assert cfg.parallel_copies == 5

    def test_with_slots(self):
        cfg = HadoopConfig().with_slots(4, 2)
        assert (cfg.map_slots, cfg.reduce_slots) == (4, 2)
        assert cfg.block_size == HadoopConfig().block_size

    @pytest.mark.parametrize(
        "kw",
        [
            {"block_size": 100},
            {"replication": 0},
            {"map_slots": 0},
            {"reduce_slots": 0},
            {"reduce_slowstart": 1.5},
            {"heartbeat_interval": 0},
            {"parallel_copies": 0},
            {"completion_poll_interval": -1},
        ],
    )
    def test_validation(self, kw):
        with pytest.raises(ValueError):
            HadoopConfig(**kw)


class TestWorkloadProfile:
    def test_builtin_profiles(self):
        assert JAVASORT_PROFILE.map_selectivity == 1.0
        assert JAVASORT_PROFILE.combiner_reduction == 1.0
        assert WORDCOUNT_PROFILE.combiner_reduction < 0.1

    def test_map_output_bytes(self):
        assert JAVASORT_PROFILE.map_output_bytes(100) == 100
        wc = WORDCOUNT_PROFILE.map_output_bytes(1000)
        assert 0 < wc < 1000

    def test_reduce_output_bytes(self):
        assert JAVASORT_PROFILE.reduce_output_bytes(64) == 64

    @pytest.mark.parametrize(
        "kw",
        [
            {"map_cpu_per_byte": -1},
            {"map_selectivity": -0.1},
            {"combiner_reduction": 0.0},
            {"combiner_reduction": 1.5},
        ],
    )
    def test_validation(self, kw):
        base = dict(
            name="x",
            map_cpu_per_byte=1e-8,
            map_selectivity=1.0,
            reduce_cpu_per_byte=1e-8,
            reduce_selectivity=1.0,
        )
        base.update(kw)
        with pytest.raises(ValueError):
            WorkloadProfile(**base)


class TestJobSpec:
    def test_map_task_count_from_blocks(self):
        spec = JobSpec("s", input_bytes=1 * GB, profile=JAVASORT_PROFILE)
        assert spec.num_map_tasks(64 * MiB) == 16

    def test_partial_block_rounds_up(self):
        spec = JobSpec("s", input_bytes=65 * MiB, profile=JAVASORT_PROFILE)
        assert spec.num_map_tasks(64 * MiB) == 2

    def test_default_reducers_one_per_block(self):
        spec = JobSpec("s", input_bytes=1 * GB, profile=JAVASORT_PROFILE)
        assert spec.reduce_tasks(64 * MiB) == 16

    def test_explicit_reducers(self):
        spec = JobSpec(
            "s", input_bytes=1 * GB, profile=WORDCOUNT_PROFILE, num_reduce_tasks=1
        )
        assert spec.reduce_tasks(64 * MiB) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            JobSpec("s", input_bytes=0, profile=JAVASORT_PROFILE)
        with pytest.raises(ValueError):
            JobSpec(
                "s", input_bytes=1, profile=JAVASORT_PROFILE, num_reduce_tasks=0
            )
