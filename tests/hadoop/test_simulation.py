"""End-to-end simulated-Hadoop tests: invariants, scaling, Table-I shape."""

import pytest

from repro.hadoop import (
    HadoopConfig,
    HadoopSimulation,
    JAVASORT_PROFILE,
    WORDCOUNT_PROFILE,
    JobSpec,
    run_hadoop_job,
)
from repro.simnet.cluster import ClusterSpec
from repro.util.units import GB, MiB


def sort_job(mb=256, **kw):
    return JobSpec(
        name=f"sort-{mb}mb",
        input_bytes=mb * MiB,
        profile=JAVASORT_PROFILE,
        **kw,
    )


@pytest.fixture(scope="module")
def small_run():
    """One shared 256 MB JavaSort run (4 maps / 4 reduces)."""
    return run_hadoop_job(sort_job(256))


class TestTimelineInvariants:
    def test_job_finishes(self, small_run):
        assert small_run.elapsed > 0
        assert len(small_run.map_tasks) == 4
        assert len(small_run.reduce_tasks) == 4

    def test_map_phase_ordering(self, small_run):
        for m in small_run.map_tasks:
            assert m.scheduled_at <= m.started_at <= m.finished_at

    def test_reduce_phase_ordering(self, small_run):
        for r in small_run.reduce_tasks:
            assert r.started_at <= r.copy_done_at <= r.sort_done_at <= r.finished_at

    def test_phases_partition_duration(self, small_run):
        for r in small_run.reduce_tasks:
            total = r.copy_time + r.sort_time + r.reduce_time
            # JVM startup sits between started_at and copy; duration covers it.
            assert total <= r.duration + 1e-9

    def test_copy_fraction_in_unit_interval(self, small_run):
        assert 0.0 <= small_run.copy_fraction <= 1.0

    def test_copy_waits_for_map_outputs(self, small_run):
        last_map = max(m.finished_at for m in small_run.map_tasks)
        # No reducer can finish copying everything before the last map is
        # announced (one heartbeat after it finishes).
        for r in small_run.reduce_tasks:
            assert r.copy_done_at >= last_map

    def test_shuffled_bytes_conservation(self, small_run):
        total_map_output = sum(m.output_bytes for m in small_run.map_tasks)
        total_shuffled = sum(r.shuffled_bytes for r in small_run.reduce_tasks)
        assert total_shuffled == pytest.approx(total_map_output, rel=0.01)

    def test_all_fetches_happened(self, small_run):
        for r in small_run.reduce_tasks:
            assert r.fetches == len(small_run.map_tasks)

    def test_locality_high_with_triple_replication(self, small_run):
        assert small_run.data_locality() >= 0.5


class TestDeterminism:
    def test_same_seed_same_result(self):
        a = run_hadoop_job(sort_job(128), seed=5)
        b = run_hadoop_job(sort_job(128), seed=5)
        assert a.elapsed == b.elapsed
        assert a.copy_fraction == b.copy_fraction


class TestScalingShape:
    def test_copy_fraction_grows_with_input(self):
        """The heart of Table I: bigger input => copy dominates more."""
        small = run_hadoop_job(sort_job(256))
        big = run_hadoop_job(sort_job(2048))
        assert big.copy_fraction > small.copy_fraction

    def test_sort_stage_near_zero(self, small_run):
        # Paper: average sort 0.0102 s.
        assert float(small_run.sort_times().mean()) < 0.1

    def test_copy_dominates_reduce_at_scale(self):
        m = run_hadoop_job(sort_job(9 * 1024))
        assert float(m.copy_times().mean()) > float(m.reduce_times().mean())

    def test_elapsed_grows_superlinearly_never_shrinks(self):
        t1 = run_hadoop_job(sort_job(128)).elapsed
        t2 = run_hadoop_job(sort_job(512)).elapsed
        assert t2 > t1

    def test_more_slots_change_schedule(self):
        lo = run_hadoop_job(sort_job(1024), config=HadoopConfig().with_slots(4, 2))
        hi = run_hadoop_job(sort_job(1024), config=HadoopConfig().with_slots(16, 16))
        assert lo.elapsed != hi.elapsed


class TestWordCount:
    def test_single_reducer_wordcount(self):
        m = run_hadoop_job(
            JobSpec(
                "wc",
                input_bytes=1 * GB,
                profile=WORDCOUNT_PROFILE,
                num_reduce_tasks=1,
            ),
            config=HadoopConfig(map_slots=7, reduce_slots=7),
        )
        assert len(m.reduce_tasks) == 1
        assert len(m.map_tasks) == 16
        # Paper's Figure 6 anchor: ~49 s at 1 GB (ours must land nearby).
        assert 30 <= m.elapsed <= 70

    def test_combiner_shrinks_shuffle(self):
        m = run_hadoop_job(
            JobSpec(
                "wc",
                input_bytes=512 * MiB,
                profile=WORDCOUNT_PROFILE,
                num_reduce_tasks=1,
            )
        )
        total_input = sum(t.input_bytes for t in m.map_tasks)
        total_shuffled = sum(r.shuffled_bytes for r in m.reduce_tasks)
        assert total_shuffled < 0.1 * total_input


class TestSimulationValidation:
    def test_needs_two_nodes(self):
        with pytest.raises(ValueError, match="master plus"):
            HadoopSimulation(
                spec=sort_job(64), cluster_spec=ClusterSpec(num_nodes=1)
            )

    def test_truncated_run_reports_progress(self):
        sim = HadoopSimulation(spec=sort_job(2048))
        with pytest.raises(RuntimeError, match="did not finish"):
            sim.run(until=10.0)

    def test_custom_cluster_size(self):
        m = run_hadoop_job(
            sort_job(256), cluster_spec=ClusterSpec(num_nodes=4)
        )
        nodes = {t.node for t in m.map_tasks}
        assert nodes <= {1, 2, 3}
