"""The living-HDFS storage layer end to end: re-replication repairs,
read-path failover, block loss as the only unfixable failure, and the
determinism of the whole pipeline."""

import json

import pytest

from repro.hadoop.config import HadoopConfig
from repro.hadoop.job import JAVASORT_PROFILE, JobSpec
from repro.hadoop.simulation import (
    HadoopSimulation,
    JobFailedError,
    run_hadoop_job,
)
from repro.simnet.faults import (
    BlockCorruption,
    Decommission,
    DiskFailure,
    FaultPlan,
)
from repro.util.units import MiB


def _spec(mb=640):
    return JobSpec("sort", input_bytes=mb * MiB, profile=JAVASORT_PROFILE)


def _disk_plan(rate_per_hour, seed=2011, **kw):
    return FaultPlan(
        specs=(DiskFailure(rate=rate_per_hour / 3600.0, **kw),), seed=seed
    )


class TestRepairPipeline:
    def test_disk_death_triggers_repair_and_job_survives(self):
        m = run_hadoop_job(
            _spec(), seed=2011, fault_plan=_disk_plan(rate_per_hour=60.0)
        )
        assert m.disk_failures > 0
        assert m.blocks_repaired > 0
        assert m.repair_bytes > 0
        assert m.blocks_lost == 0

    def test_repair_slower_under_tighter_bandwidth_cap(self):
        def mean_copy_seconds(cap):
            env = HadoopSimulation(
                spec=_spec(),
                config=HadoopConfig(repair_bandwidth_cap=cap),
                fault_plan=_disk_plan(rate_per_hour=60.0),
                observe=True,
            )
            m = env.run()
            assert m.blocks_repaired > 0
            spans = [
                s for s in env.obs.tracer.by_category("hdfs.repair")
                if s.t1 is not None
            ]
            assert spans, "expected repair copies at this failure rate"
            return sum(s.t1 - s.t0 for s in spans) / len(spans)

        # The fault *streams* are cap-independent, but a faster-repaired
        # job ends sooner (shorter failure horizon), so compare the mean
        # per-copy duration, not totals.
        assert mean_copy_seconds(10 * MiB) > mean_copy_seconds(100 * MiB)

    def test_repair_spans_traced_on_per_stream_tracks(self):
        env = HadoopSimulation(
            spec=_spec(),
            config=HadoopConfig(),
            fault_plan=_disk_plan(rate_per_hour=60.0),
            observe=True,
        )
        m = env.run()
        spans = list(env.obs.tracer.by_category("hdfs.repair"))
        assert len(spans) >= m.blocks_repaired > 0
        tracks = {s.track for s in spans}
        assert tracks <= {f"hdfs:repair:{i}" for i in range(8)}


class TestReadFailover:
    def test_corruption_detected_and_failed_over(self):
        plan = FaultPlan(specs=(BlockCorruption(rate=0.05),), seed=2011)
        m = run_hadoop_job(_spec(), seed=2011, fault_plan=plan)
        # Latent corruption only matters if a reader trips on it; at this
        # rate over a 640 MiB job some do (much higher and every replica
        # of some block rots before its reader arrives — block lost).
        assert m.corrupt_replicas_dropped > 0
        assert m.read_failovers > 0
        assert m.blocks_lost == 0

    def test_replication_one_disk_death_is_fatal_with_block_lost_reason(self):
        cfg = HadoopConfig(replication=1)
        with pytest.raises(JobFailedError) as exc:
            run_hadoop_job(
                _spec(),
                config=cfg,
                seed=2011,
                fault_plan=_disk_plan(rate_per_hour=240.0),
            )
        assert exc.value.reason.startswith("block_lost:")
        assert exc.value.metrics.blocks_lost > 0

    def test_replication_three_survives_what_kills_replication_one(self):
        plan = _disk_plan(rate_per_hour=240.0)
        m = run_hadoop_job(
            _spec(), config=HadoopConfig(replication=3), seed=2011,
            fault_plan=plan,
        )
        # At this churn blocks may still go extinct *after* their readers
        # got through — what matters is that the job completed.
        assert not m.job_failed
        with pytest.raises(JobFailedError):
            run_hadoop_job(
                _spec(), config=HadoopConfig(replication=1), seed=2011,
                fault_plan=plan,
            )


class TestDecommission:
    def test_decommission_drains_without_failing_job(self):
        plan = FaultPlan(specs=(Decommission(node=2, at=1.0),), seed=2011)
        m = run_hadoop_job(_spec(), seed=2011, fault_plan=plan)
        # Draining generates repair traffic but loses nothing.
        assert m.blocks_repaired > 0
        assert m.blocks_lost == 0
        assert m.disk_failures == 0


class TestStorageDeterminism:
    def test_same_plan_same_run_bit_for_bit(self):
        plan = FaultPlan(
            specs=(
                DiskFailure(rate=60.0 / 3600.0),
                BlockCorruption(rate=30.0 / 3600.0),
            ),
            seed=2011,
        )
        a = run_hadoop_job(_spec(), seed=2011, fault_plan=plan)
        b = run_hadoop_job(_spec(), seed=2011, fault_plan=plan)
        assert json.dumps(a.to_dict(), sort_keys=True) == json.dumps(
            b.to_dict(), sort_keys=True
        )

    def test_fault_summary_carries_storage_counters(self):
        m = run_hadoop_job(
            _spec(), seed=2011, fault_plan=_disk_plan(rate_per_hour=60.0)
        )
        fs = m.fault_summary()
        for key in (
            "disk_failures",
            "blocks_repaired",
            "repair_bytes",
            "blocks_lost",
            "read_failovers",
            "corrupt_replicas_dropped",
            "replication_clamped",
        ):
            assert key in fs
        assert fs["disk_failures"] == m.disk_failures > 0
