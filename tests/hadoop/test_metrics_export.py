"""JSON-export tests for both planes' metrics."""

import json

from repro.hadoop import JAVASORT_PROFILE, JobSpec, run_hadoop_job
from repro.mrmpi import MrMpiConfig, run_mpid_job
from repro.util.units import MiB


class TestJobMetricsToDict:
    def test_json_serializable(self):
        m = run_hadoop_job(
            JobSpec("s", input_bytes=256 * MiB, profile=JAVASORT_PROFILE)
        )
        blob = json.dumps(m.to_dict())
        parsed = json.loads(blob)
        assert parsed["summary"]["maps"] == 4
        assert len(parsed["map_tasks"]) == 4
        assert len(parsed["reduce_tasks"]) == 4

    def test_phase_fields_present(self):
        m = run_hadoop_job(
            JobSpec("s", input_bytes=128 * MiB, profile=JAVASORT_PROFILE)
        )
        r = m.to_dict()["reduce_tasks"][0]
        assert {"copy_time", "sort_time", "reduce_time", "fetches"} <= set(r)


class TestMrMpiMetricsToDict:
    def test_json_serializable(self):
        m = run_mpid_job(
            JobSpec("s", input_bytes=256 * MiB, profile=JAVASORT_PROFILE,
                    num_reduce_tasks=2),
            config=MrMpiConfig(num_mappers=4, num_reducers=2),
        )
        parsed = json.loads(json.dumps(m.to_dict()))
        assert parsed["summary"]["mappers"] == 4
        assert len(parsed["reducers"]) == 2
        assert parsed["mappers"][0]["sent_bytes"] > 0
