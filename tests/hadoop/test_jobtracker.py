"""JobTracker unit tests: assignment policy, announcement, slowstart."""

import pytest

from repro.hadoop.config import HadoopConfig
from repro.hadoop.hdfs import HdfsNamespace
from repro.hadoop.job import JAVASORT_PROFILE, JobSpec
from repro.hadoop.jobtracker import JobTracker
from repro.util.units import MiB


def make_jt(input_mb=640, reducers=None, config=None, nodes=4):
    config = config or HadoopConfig()
    hdfs = HdfsNamespace(
        list(range(1, nodes + 1)),
        block_size=config.block_size,
        replication=min(config.replication, nodes),
        seed=7,
    )
    f = hdfs.create_file("in", input_mb * MiB)
    spec = JobSpec(
        "t", input_bytes=input_mb * MiB, profile=JAVASORT_PROFILE,
        num_reduce_tasks=reducers,
    )
    return JobTracker(spec, config, f, num_workers=nodes)


class TestAssignment:
    def test_one_map_per_heartbeat(self):
        jt = make_jt()
        maps, reduces = jt.heartbeat(1, 8, 8, [], now=0.0)
        assert len(maps) == 1
        assert reduces == []  # slowstart not met

    def test_no_free_slots_no_assignment(self):
        jt = make_jt()
        maps, _ = jt.heartbeat(1, 0, 0, [], now=0.0)
        assert maps == []

    def test_locality_preferred(self):
        jt = make_jt()
        maps, _ = jt.heartbeat(2, 8, 8, [], now=0.0)
        assert maps[0].metrics.data_local

    def test_all_maps_eventually_assigned(self):
        jt = make_jt(input_mb=640)  # 10 maps
        assigned = []
        t = 0.0
        while len(assigned) < 10:
            for node in (1, 2, 3, 4):
                maps, _ = jt.heartbeat(node, 8, 8, [], now=t)
                assigned.extend(maps)
            t += 3.0
        assert sorted(m.task_id for m in assigned) == list(range(10))
        # Nothing more to hand out.
        maps, _ = jt.heartbeat(1, 8, 8, [], now=t)
        assert maps == []

    def test_maps_per_heartbeat_config(self):
        jt = make_jt(config=HadoopConfig(maps_per_heartbeat=4))
        maps, _ = jt.heartbeat(1, 8, 8, [], now=0.0)
        assert len(maps) == 4


class TestSlowstartAndReduces:
    def _complete_map(self, jt, node, now):
        maps, _ = jt.heartbeat(node, 8, 8, [], now=now)
        for m in maps:
            jt.map_finished(m, output_bytes=1000.0, now=now)
        return [m.task_id for m in maps]

    def test_reduces_wait_for_slowstart(self):
        jt = make_jt(input_mb=64 * 20)  # 20 maps, slowstart 5% -> 1 map
        assert not jt.reduces_may_start()
        done = self._complete_map(jt, 1, 0.0)
        # Completion not announced yet -> still gated.
        assert not jt.reduces_may_start()
        jt.heartbeat(1, 0, 0, done, now=3.0)
        assert jt.reduces_may_start()
        _, reduces = jt.heartbeat(2, 0, 8, [], now=3.5)
        assert len(reduces) == 1

    def test_zero_slowstart_starts_immediately(self):
        jt = make_jt(config=HadoopConfig(reduce_slowstart=0.0))
        _, reduces = jt.heartbeat(1, 0, 8, [], now=0.0)
        assert len(reduces) == 1

    def test_announcement_cursor_pages(self):
        jt = make_jt()
        done = self._complete_map(jt, 1, 0.0)
        jt.heartbeat(1, 0, 0, done, now=3.0)
        refs, cursor = jt.poll_map_outputs(0)
        assert len(refs) == 1
        assert refs[0].partition_bytes == pytest.approx(1000.0 / jt.num_reduces)
        refs2, cursor2 = jt.poll_map_outputs(cursor)
        assert refs2 == [] and cursor2 == cursor

    def test_visible_map_outputs_compat(self):
        jt = make_jt()
        done = self._complete_map(jt, 1, 0.0)
        jt.heartbeat(1, 0, 0, done, now=3.0)
        assert len(jt.visible_map_outputs(0)) == 1


class TestCompletionBookkeeping:
    def test_job_done_after_all_reduces(self):
        jt = make_jt(input_mb=64, reducers=2, config=HadoopConfig(reduce_slowstart=0.0))
        maps, _ = jt.heartbeat(1, 8, 0, [], now=0.0)
        jt.map_finished(maps[0], 10.0, now=1.0)
        _, r1 = jt.heartbeat(1, 0, 8, [maps[0].task_id], now=3.0)
        _, r2 = jt.heartbeat(2, 0, 8, [], now=3.1)
        all_reduces = list(r1) + list(r2)
        assert len(all_reduces) == 2
        assert not jt.job_done
        for r in all_reduces:
            jt.reduce_finished(r)
        assert jt.job_done

    def test_second_finish_is_a_losing_attempt(self):
        jt = make_jt()
        maps, _ = jt.heartbeat(1, 8, 8, [], now=0.0)
        assert jt.map_finished(maps[0], 10.0, now=1.0) is True
        # A racing duplicate attempt loses silently (speculation semantics).
        assert jt.map_finished(maps[0], 10.0, now=2.0) is False
        assert jt.maps_completed == 1

    def test_map_phase_done_flag(self):
        jt = make_jt(input_mb=64)
        assert not jt.map_phase_done
        maps, _ = jt.heartbeat(1, 8, 8, [], now=0.0)
        jt.map_finished(maps[0], 10.0, now=1.0)
        assert jt.map_phase_done

    def test_empty_input_rejected(self):
        config = HadoopConfig()
        hdfs = HdfsNamespace([1], block_size=config.block_size, replication=1)
        f = hdfs.create_file("in", 0)
        spec = JobSpec("t", input_bytes=1, profile=JAVASORT_PROFILE)
        with pytest.raises(ValueError, match="no blocks"):
            JobTracker(spec, config, f, num_workers=1)
