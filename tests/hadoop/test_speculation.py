"""Straggler injection + speculative execution tests."""

import pytest

from repro.experiments.stragglers import format_report, run as straggler_run
from repro.hadoop import (
    HadoopConfig,
    HadoopSimulation,
    JAVASORT_PROFILE,
    JobSpec,
    run_hadoop_job,
)
from repro.util.units import GiB, MiB


def sort_spec(mb=1024):
    return JobSpec(name="sort", input_bytes=mb * MiB, profile=JAVASORT_PROFILE)


class TestStragglerInjection:
    def test_slow_disk_slows_job(self):
        healthy = run_hadoop_job(sort_spec(), seed=3)
        degraded = run_hadoop_job(sort_spec(), seed=3, disk_slowdown={2: 8.0})
        assert degraded.elapsed > healthy.elapsed * 1.2

    def test_slowdown_validation(self):
        with pytest.raises(ValueError, match="positive"):
            HadoopSimulation(spec=sort_spec(), disk_slowdown={1: 0})

    def test_speedup_factor_below_one_is_speedup(self):
        fast = run_hadoop_job(sort_spec(), seed=3, disk_slowdown={2: 0.5})
        base = run_hadoop_job(sort_spec(), seed=3)
        assert fast.elapsed <= base.elapsed


class TestSpeculativeExecution:
    def test_off_by_default(self):
        m = run_hadoop_job(sort_spec(), seed=3)
        assert m.speculative_attempts == 0

    def test_speculation_attempts_happen_with_straggler(self):
        cfg = HadoopConfig(speculative_execution=True)
        m = run_hadoop_job(
            sort_spec(2048), config=cfg, seed=3, disk_slowdown={2: 8.0}
        )
        assert m.speculative_attempts > 0
        assert m.speculative_wins <= m.speculative_attempts

    def test_speculation_helps_with_straggler(self):
        degraded = run_hadoop_job(
            sort_spec(2048), seed=3, disk_slowdown={2: 8.0}
        )
        speculative = run_hadoop_job(
            sort_spec(2048),
            config=HadoopConfig(speculative_execution=True),
            seed=3,
            disk_slowdown={2: 8.0},
        )
        assert speculative.elapsed < degraded.elapsed

    def test_no_speculation_on_healthy_homogeneous_cluster(self):
        """Without stragglers the slowness threshold should rarely trip."""
        cfg = HadoopConfig(speculative_execution=True)
        m = run_hadoop_job(sort_spec(), config=cfg, seed=3)
        # Allow a couple of borderline duplicates but nothing systematic.
        assert m.speculative_attempts <= len(m.map_tasks) * 0.1

    def test_all_maps_complete_exactly_once(self):
        cfg = HadoopConfig(speculative_execution=True)
        m = run_hadoop_job(
            sort_spec(2048), config=cfg, seed=3, disk_slowdown={2: 8.0}
        )
        ids = [t.task_id for t in m.map_tasks]
        assert sorted(ids) == list(range(len(ids)))

    def test_config_validation(self):
        with pytest.raises(ValueError, match="slowness"):
            HadoopConfig(speculative_slowness=1.0)


class TestSpeculativeReduce:
    """Reduce-side speculation behind the same config flag."""

    def reduce_heavy(self):
        return JobSpec(
            name="sort",
            input_bytes=2048 * MiB,
            profile=JAVASORT_PROFILE,
            num_reduce_tasks=14,
        )

    def test_off_by_default(self):
        m = run_hadoop_job(self.reduce_heavy(), seed=3, disk_slowdown={2: 8.0})
        assert m.speculative_reduce_attempts == 0

    def test_attempts_happen_with_straggler(self):
        cfg = HadoopConfig(speculative_execution=True)
        m = run_hadoop_job(
            self.reduce_heavy(), config=cfg, seed=3, disk_slowdown={2: 8.0}
        )
        assert m.speculative_reduce_attempts > 0
        assert m.speculative_reduce_wins <= m.speculative_reduce_attempts

    def test_speculation_helps_reduce_straggler(self):
        degraded = run_hadoop_job(
            self.reduce_heavy(), seed=3, disk_slowdown={2: 8.0}
        )
        speculative = run_hadoop_job(
            self.reduce_heavy(),
            config=HadoopConfig(speculative_execution=True),
            seed=3,
            disk_slowdown={2: 8.0},
        )
        assert speculative.elapsed < degraded.elapsed

    def test_quiet_on_healthy_cluster(self):
        cfg = HadoopConfig(speculative_execution=True)
        m = run_hadoop_job(self.reduce_heavy(), config=cfg, seed=3)
        assert m.speculative_reduce_attempts == 0

    def test_all_reduces_complete_exactly_once(self):
        cfg = HadoopConfig(speculative_execution=True)
        m = run_hadoop_job(
            self.reduce_heavy(), config=cfg, seed=3, disk_slowdown={2: 8.0}
        )
        ids = sorted(t.task_id for t in m.reduce_tasks)
        assert ids == list(range(14))


class TestStragglerExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return straggler_run(input_gb=1, slowdown=6.0)

    def test_ordering(self, result):
        assert (
            result.healthy.elapsed
            < result.speculative.elapsed
            < result.degraded.elapsed
        )

    def test_recovery_fraction_in_range(self, result):
        assert 0.0 <= result.recovered <= 1.0

    def test_report_renders(self, result):
        out = format_report(result)
        assert "speculation recovered" in out
