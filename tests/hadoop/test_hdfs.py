"""HDFS namespace tests: block math, placement, locality."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hadoop.hdfs import Block, HdfsNamespace
from repro.util.units import MiB


def ns(nodes=7, block=64 * MiB, repl=3, seed=1):
    return HdfsNamespace(nodes, block_size=block, replication=repl, seed=seed)


class TestBlock:
    def test_validation(self):
        with pytest.raises(ValueError):
            Block(0, -1, (0,))
        with pytest.raises(ValueError):
            Block(0, 10, ())
        with pytest.raises(ValueError):
            Block(0, 10, (1, 1))

    def test_locality(self):
        b = Block(0, 10, (2, 5))
        assert b.is_local_to(2) and b.is_local_to(5)
        assert not b.is_local_to(3)


class TestCreateFile:
    def test_exact_multiple(self):
        f = ns().create_file("a", 640 * MiB)
        assert f.num_blocks == 10
        assert all(b.size == 64 * MiB for b in f.blocks)
        assert f.size == 640 * MiB

    def test_partial_tail_block(self):
        f = ns().create_file("a", 100 * MiB)
        assert f.num_blocks == 2
        assert f.blocks[-1].size == 36 * MiB
        assert f.size == 100 * MiB

    def test_empty_file(self):
        f = ns().create_file("a", 0)
        assert f.num_blocks == 0

    def test_tiny_file(self):
        f = ns().create_file("a", 1)
        assert f.num_blocks == 1
        assert f.blocks[0].size == 1

    def test_duplicate_name_rejected(self):
        space = ns()
        space.create_file("a", 1)
        with pytest.raises(ValueError, match="exists"):
            space.create_file("a", 1)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            ns().create_file("a", -1)

    def test_lookup(self):
        space = ns()
        space.create_file("a", MiB)
        assert space.lookup("a").name == "a"
        assert space.exists("a")
        assert not space.exists("b")
        with pytest.raises(FileNotFoundError):
            space.lookup("b")


class TestPlacement:
    def test_replication_count(self):
        f = ns(repl=3).create_file("a", 640 * MiB)
        for b in f.blocks:
            assert len(b.replicas) == 3
            assert len(set(b.replicas)) == 3

    def test_replication_capped_by_nodes(self):
        f = ns(nodes=2, repl=3).create_file("a", 64 * MiB)
        assert len(f.blocks[0].replicas) == 2

    def test_round_robin_spreads_first_replicas(self):
        f = ns(nodes=7, repl=1).create_file("a", 7 * 64 * MiB)
        firsts = [b.replicas[0] for b in f.blocks]
        assert sorted(firsts) == list(range(7))

    def test_writer_affinity(self):
        f = ns().create_file("a", 640 * MiB, writer_node=3)
        assert all(b.replicas[0] == 3 for b in f.blocks)

    def test_bad_writer(self):
        with pytest.raises(ValueError, match="not a datanode"):
            ns(nodes=3).create_file("a", MiB, writer_node=9)

    def test_custom_node_ids(self):
        space = HdfsNamespace([10, 20, 30], block_size=MiB, replication=2, seed=0)
        f = space.create_file("a", 5 * MiB)
        for b in f.blocks:
            assert set(b.replicas) <= {10, 20, 30}

    def test_duplicate_node_ids_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            HdfsNamespace([1, 1], block_size=MiB, replication=1)

    def test_deterministic_given_seed(self):
        f1 = ns(seed=5).create_file("a", 640 * MiB)
        f2 = ns(seed=5).create_file("a", 640 * MiB)
        assert [b.replicas for b in f1.blocks] == [b.replicas for b in f2.blocks]

    @settings(max_examples=20, deadline=None)
    @given(
        size=st.integers(1, 50 * MiB),
        nodes=st.integers(1, 10),
        repl=st.integers(1, 4),
    )
    def test_block_sizes_sum_to_file_size(self, size, nodes, repl):
        space = HdfsNamespace(nodes, block_size=4 * MiB, replication=repl, seed=0)
        f = space.create_file("f", size)
        assert f.size == size
        assert all(0 < b.size <= 4 * MiB for b in f.blocks)


class TestReplicationTargets:
    def test_excludes_writer(self):
        space = ns(repl=3)
        for _ in range(20):
            targets = space.pick_replication_targets(4)
            assert 4 not in targets
            assert len(targets) == 2

    def test_single_node_no_targets(self):
        assert ns(nodes=1, repl=3).pick_replication_targets(0) == []

    def test_replication_one_no_targets(self):
        assert ns(repl=1).pick_replication_targets(0) == []

    def test_live_pool_excludes_dead_nodes(self):
        space = ns(repl=3)
        live = {0, 1, 2}
        for _ in range(20):
            targets = space.pick_replication_targets(0, live=live)
            assert set(targets) <= {1, 2}
            assert 0 not in targets

    def test_dead_writer_never_a_target(self):
        # The writer is excluded even when it is absent from the live set
        # (a mid-pipeline death): no replica may land on it.
        space = ns(repl=3)
        for _ in range(20):
            assert 3 not in space.pick_replication_targets(3, live={0, 1, 2})

    def test_small_live_pool_clamps_with_warning_counter(self):
        space = ns(repl=3)
        assert space.clamped_placements == 0
        targets = space.pick_replication_targets(0, live={0, 1})
        assert targets == [1]
        assert space.clamped_placements == 1

    def test_empty_live_pool_clamps_to_no_targets(self):
        space = ns(repl=3)
        assert space.pick_replication_targets(0, live={0}) == []
        assert space.clamped_placements == 1

    def test_replication_one_never_bumps_clamp_counter(self):
        space = ns(repl=1)
        assert space.pick_replication_targets(0, live={0}) == []
        assert space.clamped_placements == 0

    def test_live_none_draws_identically_to_static_path(self):
        # live=None must consume the RNG exactly like the pre-liveness
        # code: two namespaces stay in lockstep whether or not one of
        # them passes the full node set explicitly.
        a, b = ns(repl=3, seed=9), ns(repl=3, seed=9)
        for writer in range(5):
            assert a.pick_replication_targets(
                writer
            ) == b.pick_replication_targets(writer, live=range(7))


class TestLocalityFraction:
    def test_all_local(self):
        space = ns(repl=1)
        f = space.create_file("a", 5 * 64 * MiB)
        assignment = {b.block_id: b.replicas[0] for b in f.blocks}
        assert space.locality_fraction("a", assignment) == 1.0

    def test_none_local(self):
        space = ns(nodes=3, repl=1)
        f = space.create_file("a", 3 * 64 * MiB)
        assignment = {
            b.block_id: (b.replicas[0] + 1) % 3 for b in f.blocks
        }
        assert space.locality_fraction("a", assignment) == 0.0

    def test_empty_file_is_trivially_local(self):
        space = ns()
        space.create_file("a", 0)
        assert space.locality_fraction("a", {}) == 1.0
