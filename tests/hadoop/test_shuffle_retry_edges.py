"""Edge cases of the lossy-shuffle retry pipeline (PR 3 hardening).

Three corners the end-to-end sweeps don't pin:

* a fetch that completes **exactly at the deadline** — the tie is
  resolved by kernel scheduling order, and both resolutions must be
  safe (no double-kill, no double-credit);
* a **zero-retry** configuration — every failure escalates straight to
  a fetch-failure strike, and the job must still converge;
* the **last-host-blacklisted** scenario — when every host the reducer
  still needs sits in its penalty box, the copier waits the penalty out
  instead of deadlocking or spinning.
"""

from __future__ import annotations

from repro.hadoop.config import HadoopConfig
from repro.hadoop.job import JAVASORT_PROFILE, JobSpec
from repro.hadoop.reducetask import _ShuffleState, _fetch_batch_robust
from repro.hadoop.simulation import HadoopSimulation, run_hadoop_job
from repro.simnet.faults import FaultPlan, FlowLossRate
from repro.simnet.kernel import Simulator
from repro.simnet.network import Network
from repro.simnet.resources import SlotPool
from repro.util.units import GiB


def _spec(gb=0.25):
    return JobSpec("sort", input_bytes=int(gb * GiB), profile=JAVASORT_PROFILE)


# -- the deadline tie, in the exact shape _fetch_batch_robust races it --------
class TestDeadlineTie:
    @staticmethod
    def _race(completion_before_deadline: bool):
        """One fetch race: serve + flow vs deadline, all resolving at t=10."""
        sim = Simulator()
        flow_done = sim.event()
        outcome = []
        if completion_before_deadline:
            # Steady flow: its completion timer was scheduled when the
            # transfer started, i.e. before the deadline existed.
            completion = sim.timeout(10.0)
        serve = sim.timeout(1.0)
        done = sim.all_of([serve, flow_done])
        deadline = sim.timeout(10.0)
        if not completion_before_deadline:
            # Reallocated flow: a rate change superseded the original
            # timer with one scheduled after the deadline.
            completion = sim.timeout(10.0)
        completion.callbacks.append(lambda ev: flow_done.succeed())

        def fetcher():
            yield sim.any_of([done, deadline])
            outcome.append("ok" if done.triggered else "timeout")
            deadline.cancel()

        sim.process(fetcher(), name="fetcher")
        sim.run()
        return outcome[0]

    def test_steady_flow_finishing_at_deadline_counts_as_success(self):
        assert self._race(completion_before_deadline=True) == "ok"

    def test_reallocated_flow_finishing_at_deadline_counts_as_timeout(self):
        # The bytes still land (flow_done fires), but the copier already
        # classified the attempt: it must cancel and refetch — which is
        # only safe because cancelling a finished flow is a no-op below.
        assert self._race(completion_before_deadline=False) == "timeout"

    def test_cancelling_a_finished_flow_is_a_noop(self):
        sim = Simulator()
        net = Network(sim)
        a = net.add_link("a", 1e6)
        b = net.add_link("b", 1e6)
        f = net.transfer_flow((a, b), 1e6)
        sim.run()
        assert f.done.ok
        assert net.cancel_flow(f, reason="fetch-timeout") is False
        assert net.bytes_delivered == 1e6  # credit unchanged


# -- zero-retry configuration -------------------------------------------------
class TestZeroRetries:
    def test_every_failure_escalates_to_a_strike_and_job_converges(self):
        cfg = HadoopConfig(fetch_retries=0, fetch_failure_threshold=1)
        plan = FaultPlan(specs=(FlowLossRate(rate=0.25),), seed=2011)
        lossy = run_hadoop_job(_spec(), seed=2011, config=cfg, fault_plan=plan)
        clean = run_hadoop_job(_spec(), seed=2011, config=cfg)
        assert lossy.fetch_retries > 0
        # retries == 0: a failed attempt never re-tries the same host
        # silently; each one is reported, so strikes == failed attempts.
        assert lossy.fetch_failures == lossy.fetch_retries
        # threshold == 1: a single strike re-executes the map.
        assert lossy.maps_reexecuted_for_fetch > 0
        assert lossy.elapsed >= clean.elapsed

    def test_zero_retry_clean_network_is_untouched(self):
        cfg = HadoopConfig(fetch_retries=0, fetch_failure_threshold=1)
        base = run_hadoop_job(_spec(), seed=2011)
        zero = run_hadoop_job(_spec(), seed=2011, config=cfg)
        assert zero.fetch_retries == 0
        assert zero.elapsed == base.elapsed


# -- penalty box: every needed host blacklisted -------------------------------
class TestPenaltyBox:
    @staticmethod
    def _one_map_one_reduce(cfg):
        """A live env with one announced map output and one reducer."""
        env = HadoopSimulation(spec=_spec(), config=cfg, observe=True)
        jt = env.jobtracker
        maps, _ = jt.heartbeat(1, 8, 8, [], now=0.0)
        jt.map_finished(maps[0], output_bytes=1_000_000.0, now=0.0)
        _, reduces = jt.heartbeat(2, 0, 1, [maps[0].task.task_id], now=0.0)
        task = reduces[0]
        refs, _ = jt.poll_map_outputs(0, partition=task.partition)
        return env, task, refs

    def test_last_host_blacklisted_is_waited_out_not_deadlocked(self):
        # The reducer's only remaining source host sits in the penalty
        # box.  The copier must serve the penalty time, then fetch —
        # never spin, never give up.
        cfg = HadoopConfig()
        env, task, refs = self._one_map_one_reduce(cfg)
        sim = env.sim
        state = _ShuffleState()
        state.penalty_until = {1: 7.5}
        state.initiated = len(refs)
        state.inflight_ids.update(r.map_id for r in refs)
        copiers = SlotPool(sim, cfg.parallel_copies, name="copiers")
        fetch = env.spawn_on_node(
            task.node,
            _fetch_batch_robust(env, task, copiers, 1, refs, state),
            name="fetch",
        )
        sim.run()
        assert fetch.ok
        assert state.fetches == len(refs)
        assert state.shuffled_bytes == sum(r.partition_bytes for r in refs)
        waits = [
            (s.name, s.args.get("delay"))
            for s in env.obs.tracer.by_category("hadoop.shuffle.backoff")
        ]
        assert waits == [("penalty r0<-n1", 7.5)]

    def test_expired_penalty_is_not_served(self):
        cfg = HadoopConfig()
        env, task, refs = self._one_map_one_reduce(cfg)
        sim = env.sim
        state = _ShuffleState()
        state.penalty_until = {1: -1.0}  # long expired
        state.initiated = len(refs)
        state.inflight_ids.update(r.map_id for r in refs)
        copiers = SlotPool(sim, cfg.parallel_copies, name="copiers")
        env.spawn_on_node(
            task.node,
            _fetch_batch_robust(env, task, copiers, 1, refs, state),
            name="fetch",
        )
        sim.run()
        assert state.fetches == len(refs)
        waits = list(env.obs.tracer.by_category("hadoop.shuffle.backoff"))
        assert waits == []

    def test_exhausted_rounds_strike_wait_and_job_converges(self):
        # A strike threshold too high to ever re-execute: the segments
        # never move off their lossy hosts, so the only way the job can
        # finish is by waiting out strike-length pauses and re-fetching.
        cfg = HadoopConfig(
            fetch_retries=1,
            fetch_failure_threshold=10_000,
            fetch_backoff_base=0.5,
            fetch_backoff_max=4.0,
        )
        plan = FaultPlan(specs=(FlowLossRate(rate=1.0),), seed=2011)
        env = HadoopSimulation(
            spec=_spec(), config=cfg, fault_plan=plan, observe=True
        )
        metrics = env.run()
        assert metrics.elapsed > 0  # ran to completion
        assert metrics.fetch_retries > 0
        assert metrics.maps_reexecuted_for_fetch == 0  # nothing moved
        waits = [
            s.name
            for s in env.obs.tracer.by_category("hadoop.shuffle.backoff")
        ]
        assert any(name.startswith("strike-wait") for name in waits)
