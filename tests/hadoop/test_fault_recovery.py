"""Hadoop failure recovery: heartbeat expiry, attempt retry, map
re-execution, blacklisting — and bit-for-bit cleanliness without faults."""

import pytest

from repro.hadoop import HadoopConfig, JobFailedError, JobSpec, WORDCOUNT_PROFILE
from repro.hadoop.simulation import HadoopSimulation, run_hadoop_job
from repro.simnet.faults import CrashRate, FaultPlan, NodeCrash


def _spec(gb=2):
    return JobSpec(
        name="wc",
        input_bytes=gb * 10**9,
        profile=WORDCOUNT_PROFILE,
        num_reduce_tasks=7,
    )


def _cfg(**kw):
    kw.setdefault("tasktracker_expiry_interval", 60.0)
    return HadoopConfig(**kw)


@pytest.fixture(scope="module")
def clean_metrics():
    return run_hadoop_job(_spec(), config=_cfg())


# -- the acceptance-critical invariant ----------------------------------------
class TestEmptyPlanIsBitForBit:
    def test_empty_plan_reproduces_clean_run_exactly(self, clean_metrics):
        m = run_hadoop_job(_spec(), config=_cfg(), fault_plan=FaultPlan())
        assert m.elapsed == clean_metrics.elapsed
        assert m.to_dict() == clean_metrics.to_dict()

    def test_none_plan_reproduces_clean_run_exactly(self, clean_metrics):
        m = run_hadoop_job(_spec(), config=_cfg(), fault_plan=None)
        assert m.to_dict() == clean_metrics.to_dict()

    def test_clean_run_reports_no_faults(self, clean_metrics):
        f = clean_metrics.fault_summary()
        assert not f["job_failed"]
        assert f["lost_trackers"] == 0
        assert f["wasted_task_seconds"] == 0.0


# -- heartbeat expiry detection (unit level) ----------------------------------
class TestHeartbeatExpiry:
    def _jt(self):
        return HadoopSimulation(spec=_spec(), config=_cfg()).jobtracker

    def test_expiry_detects_silent_trackers(self):
        jt = self._jt()
        jt.tracker_registered(1, 0.0)
        jt.tracker_registered(2, 0.0)
        assert jt.find_expired(now=50.0, interval=60.0) == []
        assert jt.find_expired(now=61.0, interval=60.0) == [1, 2]

    def test_heartbeat_refreshes_expiry(self):
        jt = self._jt()
        jt.tracker_registered(1, 0.0)
        jt.heartbeat(node=1, free_map_slots=0, free_reduce_slots=0,
                     completed_map_ids=[], now=50.0)
        assert jt.find_expired(now=100.0, interval=60.0) == []
        assert jt.find_expired(now=111.0, interval=60.0) == [1]

    def test_lost_tracker_blacklists_and_starves(self):
        jt = self._jt()
        jt.tracker_registered(1, 0.0)
        jt.lost_tasktracker(1, 61.0)
        assert 1 in jt.blacklisted
        assert jt.lost_trackers == 1
        maps, reduces = jt.heartbeat(node=1, free_map_slots=7, free_reduce_slots=7,
                                     completed_map_ids=[], now=62.0)
        assert maps == [] and reduces == []
        # A blacklisted node no longer shows up as expired.
        assert jt.find_expired(now=200.0, interval=60.0) == []

    def test_lost_tracker_idempotent(self):
        jt = self._jt()
        jt.tracker_registered(1, 0.0)
        jt.lost_tasktracker(1, 61.0)
        jt.lost_tasktracker(1, 62.0)
        assert jt.lost_trackers == 1

    def test_reregistration_unblacklists(self):
        jt = self._jt()
        jt.tracker_registered(1, 0.0)
        jt.lost_tasktracker(1, 61.0)
        jt.tracker_registered(1, 90.0)
        assert 1 not in jt.blacklisted
        maps, _ = jt.heartbeat(node=1, free_map_slots=7, free_reduce_slots=7,
                               completed_map_ids=[], now=91.0)
        assert maps  # assignable again


# -- recovery through the full DES -------------------------------------------
class TestRecovery:
    def test_crash_with_restart_recovers_and_costs_time(self, clean_metrics):
        t = clean_metrics.elapsed * 0.4
        plan = FaultPlan(specs=(NodeCrash(node=3, at=t, restart_after=30.0),))
        m = run_hadoop_job(_spec(), config=_cfg(), fault_plan=plan)
        assert not m.job_failed
        assert m.lost_trackers == 1
        assert m.failed_map_attempts > 0
        assert m.wasted_task_seconds > 0
        assert m.elapsed > clean_metrics.elapsed

    def test_permanent_crash_recovers_without_the_node(self, clean_metrics):
        t = clean_metrics.elapsed * 0.4
        plan = FaultPlan(specs=(NodeCrash(node=3, at=t),))
        m = run_hadoop_job(_spec(), config=_cfg(), fault_plan=plan)
        assert not m.job_failed
        assert m.lost_trackers == 1

    def test_completed_maps_reexecute_after_late_crash(self, clean_metrics):
        """A node dying *after* its maps finished loses their output
        (mapred.local.dir, not HDFS): those maps must run again."""
        t = clean_metrics.elapsed * 0.9
        plan = FaultPlan(specs=(NodeCrash(node=3, at=t, restart_after=20.0),))
        m = run_hadoop_job(_spec(), config=_cfg(), fault_plan=plan)
        assert not m.job_failed
        assert m.maps_reexecuted > 0

    def test_faulty_run_is_deterministic(self, clean_metrics):
        t = clean_metrics.elapsed * 0.5
        plan = FaultPlan(specs=(NodeCrash(node=2, at=t, restart_after=25.0),))
        a = run_hadoop_job(_spec(), config=_cfg(), fault_plan=plan)
        b = run_hadoop_job(_spec(), config=_cfg(), fault_plan=plan)
        assert a.to_dict() == b.to_dict()

    def test_churn_run_completes(self):
        plan = FaultPlan(
            specs=(CrashRate(rate=1 / 400.0, restart_after=30.0),), seed=7
        )
        m = run_hadoop_job(_spec(), config=_cfg(), fault_plan=plan)
        assert not m.job_failed
        assert m.lost_trackers >= 1


class TestJobFailure:
    def test_master_loss_fails_the_job(self, clean_metrics):
        plan = FaultPlan(
            specs=(NodeCrash(node=0, at=clean_metrics.elapsed * 0.3),)
        )
        with pytest.raises(JobFailedError, match="master"):
            run_hadoop_job(_spec(), config=_cfg(), fault_plan=plan)

    def test_all_workers_lost_fails_instead_of_hanging(self):
        plan = FaultPlan(specs=tuple(NodeCrash(node=n, at=5.0) for n in range(1, 8)))
        with pytest.raises(JobFailedError, match="all tasktrackers"):
            run_hadoop_job(_spec(), config=_cfg(), fault_plan=plan)

    def test_max_attempts_exhaustion_fails_the_job(self, clean_metrics):
        """With max_attempts=1 the first killed attempt is fatal."""
        t = clean_metrics.elapsed * 0.3
        plan = FaultPlan(specs=(NodeCrash(node=3, at=t, restart_after=30.0),))
        with pytest.raises(JobFailedError, match="attempts"):
            run_hadoop_job(_spec(), config=_cfg(max_attempts=1), fault_plan=plan)

    def test_failure_metrics_ride_the_exception(self):
        plan = FaultPlan(specs=tuple(NodeCrash(node=n, at=5.0) for n in range(1, 8)))
        with pytest.raises(JobFailedError) as exc_info:
            run_hadoop_job(_spec(), config=_cfg(), fault_plan=plan)
        m = exc_info.value.metrics
        assert m.job_failed
        assert m.failure_reason
        assert m.fault_summary()["job_failed"]


class TestConfigValidation:
    def test_expiry_must_be_positive(self):
        with pytest.raises(ValueError):
            HadoopConfig(tasktracker_expiry_interval=0.0)

    def test_max_attempts_at_least_one(self):
        with pytest.raises(ValueError):
            HadoopConfig(max_attempts=0)
