"""Direct tests of the metrics dataclasses (the simulated Hadoop logs)."""

import numpy as np
import pytest

from repro.hadoop.metrics import JobMetrics, MapTaskMetrics, ReduceTaskMetrics


def _map(task_id=0, start=0.0, end=10.0, node=1, local=True):
    return MapTaskMetrics(
        task_id=task_id,
        node=node,
        started_at=start,
        finished_at=end,
        data_local=local,
    )


def _reduce(task_id=0, start=0.0, copy=50.0, sort=50.01, end=60.0):
    return ReduceTaskMetrics(
        task_id=task_id,
        node=1,
        started_at=start,
        copy_done_at=copy,
        sort_done_at=sort,
        finished_at=end,
    )


class TestPhaseArithmetic:
    def test_map_duration(self):
        assert _map(start=2.0, end=12.5).duration == 10.5

    def test_reduce_phases(self):
        r = _reduce()
        assert r.copy_time == 50.0
        assert r.sort_time == pytest.approx(0.01)
        assert r.reduce_time == pytest.approx(9.99)
        assert r.duration == 60.0


class TestJobAggregates:
    def _job(self):
        m = JobMetrics(job_name="j", submitted_at=0.0, finished_at=100.0)
        m.map_tasks = [_map(i, 0, 10) for i in range(4)]
        m.reduce_tasks = [_reduce(i) for i in range(2)]
        return m

    def test_elapsed(self):
        assert self._job().elapsed == 100.0

    def test_copy_fraction(self):
        m = self._job()
        # copy = 2 * 50; total = 4 * 10 + 2 * 60
        assert m.copy_fraction == pytest.approx(100.0 / 160.0)

    def test_copy_fraction_no_tasks(self):
        assert JobMetrics(job_name="empty").copy_fraction == 0.0

    def test_time_arrays(self):
        m = self._job()
        assert isinstance(m.copy_times(), np.ndarray)
        assert m.copy_times().tolist() == [50.0, 50.0]

    def test_summary_fields(self):
        s = self._job().summary()
        assert s["maps"] == 4 and s["reduces"] == 2
        assert "avg_copy" in s and "copy_fraction" in s

    def test_summary_without_reducers(self):
        m = JobMetrics(job_name="maponly")
        m.map_tasks = [_map()]
        s = m.summary()
        assert "avg_copy" not in s

    def test_data_locality(self):
        m = JobMetrics(job_name="j")
        m.map_tasks = [_map(local=True), _map(local=False)]
        assert m.data_locality() == 0.5
        assert JobMetrics(job_name="none").data_locality() == 1.0
