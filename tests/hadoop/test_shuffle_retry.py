"""The lossy-network shuffle pipeline: per-fetch timeout/retry/backoff,
the 0.20 three-strikes rule, and the clean-path bit-for-bit guarantee."""

import pytest

from repro.hadoop.config import HadoopConfig
from repro.hadoop.hdfs import HdfsNamespace
from repro.hadoop.job import JAVASORT_PROFILE, JobSpec
from repro.hadoop.jobtracker import JobTracker
from repro.hadoop.simulation import HadoopSimulation, run_hadoop_job
from repro.simnet.faults import FaultPlan, FlowLossRate, NodeCrash
from repro.util.units import GiB, MiB


def _spec(gb=1.0):
    return JobSpec("sort", input_bytes=int(gb * GiB), profile=JAVASORT_PROFILE)


def _make_jt(config=None, nodes=4):
    config = config or HadoopConfig()
    hdfs = HdfsNamespace(
        list(range(1, nodes + 1)),
        block_size=config.block_size,
        replication=min(config.replication, nodes),
        seed=7,
    )
    f = hdfs.create_file("in", 640 * MiB)
    spec = JobSpec("t", input_bytes=640 * MiB, profile=JAVASORT_PROFILE)
    return JobTracker(spec, config, f, num_workers=nodes)


def _complete_one_map(jt, node=1):
    maps, _ = jt.heartbeat(node, 8, 8, [], now=0.0)
    attempt = maps[0]
    jt.map_finished(attempt, output_bytes=1000.0, now=1.0)
    return attempt.task


# -- the JobTracker's three-strikes rule --------------------------------------
class TestFetchFailureStrikes:
    def test_indefinite_reports_accumulate_to_threshold(self):
        jt = _make_jt(config=HadoopConfig(fetch_failure_threshold=3))
        task = _complete_one_map(jt, node=1)
        for _ in range(2):
            jt.fetch_failed([task.task_id], src_node=1, now=2.0, definite=False)
            assert task.state == "done"
            assert jt.maps_reexecuted_for_fetch == 0
        jt.fetch_failed([task.task_id], src_node=1, now=2.0, definite=False)
        assert task.state == "pending"
        assert jt.maps_reexecuted_for_fetch == 1
        assert jt.fetch_failures == 3

    def test_strike_count_resets_on_reexecution(self):
        jt = _make_jt(config=HadoopConfig(fetch_failure_threshold=2))
        task = _complete_one_map(jt, node=1)
        jt.fetch_failed([task.task_id], src_node=1, now=2.0, definite=False)
        jt.fetch_failed([task.task_id], src_node=1, now=2.0, definite=False)
        assert jt._fetch_fail_counts.get(task.task_id) is None

    def test_definite_report_reexecutes_immediately(self):
        jt = _make_jt()
        task = _complete_one_map(jt, node=1)
        jt.fetch_failed([task.task_id], src_node=1, now=2.0, definite=True)
        assert task.state == "pending"
        # The definite path is the node-loss one, not the strike counter.
        assert jt.maps_reexecuted_for_fetch == 0

    def test_stale_report_ignored(self):
        """A strike naming the wrong source node (the map moved since the
        reducer picked its target) must not damage the fresh output."""
        jt = _make_jt(config=HadoopConfig(fetch_failure_threshold=1))
        task = _complete_one_map(jt, node=1)
        jt.fetch_failed([task.task_id], src_node=2, now=2.0, definite=False)
        assert task.state == "done"
        assert jt.maps_reexecuted_for_fetch == 0
        assert jt.fetch_failures == 1  # still counted as a complaint


# -- the robust copy stage end to end -----------------------------------------
class TestLossyShuffle:
    def test_loss_causes_retries_but_job_completes(self):
        clean = run_hadoop_job(_spec(), seed=2011)
        plan = FaultPlan(specs=(FlowLossRate(rate=0.2),), seed=2011)
        lossy = run_hadoop_job(_spec(), seed=2011, fault_plan=plan)
        assert lossy.fetch_retries > 0
        # Retries can hide off the critical path (other fetches overlap
        # the backoff), but they can never make the job *faster*.
        assert lossy.elapsed >= clean.elapsed
        # Moderate loss: every fetch succeeds within its retry budget, so
        # no map crosses the strike threshold.
        assert lossy.maps_reexecuted_for_fetch == 0

    def test_lossy_run_is_deterministic(self):
        plan = FaultPlan(specs=(FlowLossRate(rate=0.2),), seed=2011)
        a = run_hadoop_job(_spec(), seed=2011, fault_plan=plan)
        b = run_hadoop_job(_spec(), seed=2011, fault_plan=plan)
        assert a.elapsed == b.elapsed
        assert a.fetch_retries == b.fetch_retries
        assert a.fetch_failures == b.fetch_failures

    def test_backoff_waits_are_traced(self):
        plan = FaultPlan(specs=(FlowLossRate(rate=0.3),), seed=2011)
        env = HadoopSimulation(
            spec=_spec(), config=HadoopConfig(), fault_plan=plan, observe=True
        )
        metrics = env.run()
        spans = list(env.obs.tracer.by_category("hadoop.shuffle.backoff"))
        assert metrics.fetch_retries > 0
        assert len(spans) >= metrics.fetch_retries  # one wait per retry


# -- the clean-path guarantee -------------------------------------------------
class TestCleanPathRegression:
    def test_empty_plan_is_bit_identical_to_no_plan(self):
        clean = run_hadoop_job(_spec(), seed=2011)
        empty = run_hadoop_job(_spec(), seed=2011, fault_plan=FaultPlan())
        assert empty.elapsed == clean.elapsed
        assert empty.fetch_retries == 0

    def test_loss_free_network_plan_is_bit_identical(self):
        """The retry pipeline engages (net-fault mode) but zero kills land:
        timings must match the legacy fetch path exactly, not approximately."""
        clean = run_hadoop_job(_spec(), seed=2011)
        plan = FaultPlan(
            specs=(FlowLossRate(rate=1e-6, duration=0.001),), seed=2011
        )
        quiet = run_hadoop_job(_spec(), seed=2011, fault_plan=plan)
        assert quiet.fetch_retries == 0
        assert quiet.fetch_failures == 0
        assert quiet.elapsed == clean.elapsed

    def test_never_firing_crash_plan_is_bit_identical(self):
        """Crash-only plans keep the legacy fetch path; one scheduled far
        past the job's end must not perturb anything."""
        clean = run_hadoop_job(_spec(), seed=2011)
        plan = FaultPlan(specs=(NodeCrash(node=1, at=1e6),), seed=2011)
        idle = run_hadoop_job(_spec(), seed=2011, fault_plan=plan)
        assert idle.elapsed == clean.elapsed
