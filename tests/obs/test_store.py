"""Streaming trace store: round-trip fidelity, chunked reads, footers.

The store's contract has two halves and both are pinned here:

* **fidelity** — a trace streamed to disk as it was recorded folds back
  into the *exact* in-memory ``SpanTracer`` state (bit-for-bit spans,
  instants, edges, and open-span stacks), property-tested over random
  begin/end/instant/edge sequences and checked end-to-end on a real
  simulation;
* **memory** — the chunked reader never holds more than one chunk plus
  one carried line, no matter how large the file.
"""

import json

import pytest
from hypothesis import given, strategies as st

from repro.obs.observer import Observer
from repro.obs.store import (
    TraceStoreReader,
    TraceStoreWriter,
    events_of,
    load_tracer,
    read_events,
    read_footer,
)


class Clock:
    def __init__(self, t: float = 0.0):
        self.t = t

    def __call__(self) -> float:
        return self.t


def tracer_state(tracer):
    """Everything the round-trip guarantee covers, as comparable data."""
    return (
        [
            (s.sid, s.parent, s.category, s.name, s.track, s.t0, s.t1, s.args)
            for s in tracer.spans
        ],
        [(i.time, i.category, i.name, i.track, i.args) for i in tracer.instants],
        [(e.src, e.dst, e.kind, e.time, e.args) for e in tracer.edges],
        {k: list(v) for k, v in tracer._open_by_track.items() if v},
    )


# One random trace "program": a sequence of recorded operations.  Ends
# may close any still-open span (in any order); some spans stay open.
_op = st.sampled_from(["begin", "end", "instant", "edge"])
_programs = st.lists(
    st.tuples(_op, st.floats(min_value=0.0, max_value=100.0,
                             allow_nan=False, allow_infinity=False),
              st.integers(min_value=0, max_value=4)),
    min_size=0, max_size=60,
)


def run_program(program):
    """Drive a live observer + streaming writer through one program."""
    clock = Clock()
    obs = Observer(clock=clock)
    open_sids = []
    t = 0.0
    for op, dt, pick in program:
        t += dt / 10.0
        clock.t = t
        if op == "begin":
            track = f"track{pick}"
            sid = obs.tracer.begin(
                f"cat{pick % 3}", f"span at {t:.3f}", track=track,
                node=pick, detail=f"d{pick}",
            )
            open_sids.append(sid)
        elif op == "end" and open_sids:
            sid = open_sids.pop(pick % len(open_sids))
            obs.tracer.end(sid, done=pick)
        elif op == "instant":
            obs.tracer.instant(f"icat{pick % 2}", f"inst {t:.3f}",
                               track="marks", n=pick)
        elif op == "edge" and len(obs.tracer.spans) >= 2:
            n = len(obs.tracer.spans)
            src_sid, dst_sid = 1 + pick % n, 1 + (pick // 2) % n
            if src_sid != dst_sid:
                obs.tracer.edge(src_sid, dst_sid, kind="dep")
    return obs


class TestRoundTrip:
    @given(_programs)
    def test_streamed_store_reconstructs_exact_tracer(self, tmp_path_factory,
                                                      program):
        tmp = tmp_path_factory.mktemp("store")
        path = tmp / "trace.store.jsonl"
        clock = Clock()
        obs = Observer(clock=clock)
        with TraceStoreWriter(path, system="prop") as writer:
            writer.attach(obs)
            # Replay the same program against the attached observer.
            open_sids = []
            t = 0.0
            for op, dt, pick in program:
                t += dt / 10.0
                clock.t = t
                if op == "begin":
                    open_sids.append(obs.tracer.begin(
                        f"cat{pick % 3}", f"span at {t:.3f}",
                        track=f"track{pick}", node=pick, detail=f"d{pick}",
                    ))
                elif op == "end" and open_sids:
                    obs.tracer.end(open_sids.pop(pick % len(open_sids)),
                                   done=pick)
                elif op == "instant":
                    obs.tracer.instant(f"icat{pick % 2}", f"inst {t:.3f}",
                                       track="marks", n=pick)
                elif op == "edge" and len(obs.tracer.spans) >= 2:
                    n = len(obs.tracer.spans)
                    src_sid = 1 + pick % n
                    dst_sid = 1 + (pick // 2) % n
                    if src_sid != dst_sid:
                        obs.tracer.edge(src_sid, dst_sid, kind="dep")
        # Tiny chunks on purpose: fidelity must not depend on chunk size.
        rebuilt = load_tracer(path, chunk_bytes=256)
        assert tracer_state(rebuilt) == tracer_state(obs.tracer)

    def test_real_simulation_round_trips_bit_for_bit(self, tmp_path):
        from repro.hadoop import HadoopConfig, JobSpec, WORDCOUNT_PROFILE
        from repro.hadoop.simulation import HadoopSimulation
        from repro.util.units import MiB

        spec = JobSpec(name="rt", input_bytes=128 * MiB,
                       profile=WORDCOUNT_PROFILE, num_reduce_tasks=1)
        sim = HadoopSimulation(spec=spec, config=HadoopConfig(), observe=True)
        path = tmp_path / "run.store.jsonl"
        with sim.obs.stream_to(path, system="hadoop"):
            sim.run()
        rebuilt = load_tracer(path)
        assert tracer_state(rebuilt) == tracer_state(sim.obs.tracer)
        assert rebuilt.last_time() == sim.obs.tracer.last_time()

    def test_live_events_match_streamed_events(self, tmp_path):
        """``events_of`` (live) and the file agree on spans/instants/edges."""
        obs = run_program([("begin", 5.0, 1), ("instant", 1.0, 0),
                           ("begin", 2.0, 2), ("edge", 0.0, 1),
                           ("end", 3.0, 0)])
        live = [ev for ev in events_of(obs) if ev["k"] != "sample"]
        rebuilt = load_tracer(iter(live))
        assert tracer_state(rebuilt) == tracer_state(obs.tracer)


class TestChunkedReader:
    @pytest.fixture(scope="class")
    def big_store(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("store") / "big.store.jsonl"
        clock = Clock()
        obs = Observer(clock=clock)
        with TraceStoreWriter(path, system="big", index_every=100) as w:
            w.attach(obs)
            for i in range(500):
                clock.t = float(i)
                sid = obs.tracer.begin("cat", f"span{i}", track=f"t{i % 7}")
                clock.t = i + 0.5
                obs.tracer.end(sid)
                obs.metrics.gauge("g").set(i)
        return path

    def test_memory_stays_o_chunk(self, big_store):
        chunk = 1024
        reader = TraceStoreReader(big_store, chunk_bytes=chunk)
        n = sum(1 for _ in reader)
        assert n == 1500  # 500 * (begin + end + sample)
        longest = max(len(line) for line in
                      big_store.read_text().splitlines()) + 1
        # One chunk plus at most one carried (partial) line — never the
        # whole file, which is > 50 chunks here.
        assert reader.max_buffered_bytes <= chunk + longest
        assert reader.max_buffered_bytes < big_store.stat().st_size / 10

    def test_footer_counts_index_and_tail_read(self, big_store):
        footer = read_footer(big_store)
        assert footer is not None
        assert footer["events"] == 1500
        assert footer["counts"]["begin"] == 500
        assert footer["counts"]["sample"] == 500
        assert footer["final_time"] == 499.5
        assert footer["metrics"]["g"]["type"] == "gauge"
        # Sparse index: one [event_index, byte_offset] per 100 events,
        # each offset pointing at the start of that event's line.
        assert [i for i, _ in footer["index"]] == list(range(0, 1500, 100))
        raw = big_store.read_bytes()
        for _i, offset in footer["index"][:3]:
            assert raw[offset:offset + 1] == b"{"

    def test_reader_exposes_header_and_footer(self, big_store):
        reader = TraceStoreReader(big_store)
        for _ in reader:
            pass
        assert reader.header == {"k": "header", "version": 1, "system": "big"}
        assert reader.footer is not None and reader.footer["k"] == "footer"

    def test_unclosed_store_has_no_footer(self, tmp_path):
        path = tmp_path / "open.store.jsonl"
        obs = Observer(clock=Clock())
        writer = TraceStoreWriter(path, system="x").attach(obs)
        obs.tracer.begin("cat", "s")
        writer._fh.flush()
        assert read_footer(path) is None
        writer.close()
        assert read_footer(path)["events"] == 1

    def test_same_seed_stores_are_byte_identical(self, tmp_path):
        from repro.hadoop import HadoopConfig, JobSpec, WORDCOUNT_PROFILE
        from repro.hadoop.simulation import HadoopSimulation
        from repro.util.units import MiB

        def run(path):
            spec = JobSpec(name="det", input_bytes=64 * MiB,
                           profile=WORDCOUNT_PROFILE, num_reduce_tasks=1)
            sim = HadoopSimulation(spec=spec, config=HadoopConfig(),
                                   seed=7, observe=True)
            with sim.obs.stream_to(path, system="hadoop"):
                sim.run()

        run(tmp_path / "a.jsonl")
        run(tmp_path / "b.jsonl")
        assert (tmp_path / "a.jsonl").read_bytes() == \
            (tmp_path / "b.jsonl").read_bytes()


class TestCorruptStores:
    def test_begin_sid_out_of_order_raises(self):
        with pytest.raises(ValueError, match="begin sid"):
            load_tracer(iter([
                {"k": "begin", "sid": 2, "parent": 0, "cat": "c", "name": "n",
                 "track": "t", "t0": 0.0, "args": {}},
            ]))

    def test_end_of_unknown_span_raises(self):
        with pytest.raises(ValueError, match="unknown span"):
            load_tracer(iter([{"k": "end", "sid": 9, "t1": 1.0, "args": {}}]))

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            load_tracer(iter([{"k": "bogus"}]))

    def test_detach_on_close_stops_streaming(self, tmp_path):
        path = tmp_path / "s.jsonl"
        obs = Observer(clock=Clock())
        writer = TraceStoreWriter(path).attach(obs)
        obs.tracer.instant("cat", "before")
        writer.close()
        obs.tracer.instant("cat", "after")  # must not hit the closed file
        kinds = [ev["k"] for ev in read_events(path)]
        assert kinds == ["instant"]
        assert obs.tracer.sink is None
        assert obs.metrics.sample_sink is None

    def test_store_lines_are_valid_compact_json(self, tmp_path):
        path = tmp_path / "s.jsonl"
        obs = Observer(clock=Clock())
        with TraceStoreWriter(path).attach(obs):
            sid = obs.tracer.begin("cat", "n")
            obs.tracer.end(sid)
        lines = path.read_text().splitlines()
        assert json.loads(lines[0])["k"] == "header"
        assert json.loads(lines[-1])["k"] == "footer"
        assert all(json.loads(line) for line in lines)
