"""The per-tenant capacity analyzer (:mod:`repro.obs.tenant_analysis`).

Synthetic-job tests pin the FIFO replay and the projection arithmetic;
the traced tests run a real (small) multi-tenant engine and check the
span pairing and blame report against what the engine itself recorded.
"""

import pytest

from repro.obs.tenant_analysis import (
    TenantJob,
    analyze_tenants,
    jobs_from_tracer,
    project_drop_tenant,
    project_queue_capacity,
    replay_fifo,
    tenant_blame,
)

MiB = 1 << 20


def _job(jid, tenant="a", submitted=0.0, dispatched=None, finished=None,
         outcome="done"):
    return TenantJob(
        job_id=jid, tenant=tenant, queue="q", name=f"j{jid}",
        runtime="hadoop", submitted=submitted, dispatched=dispatched,
        finished=finished, outcome=outcome,
    )


class TestReplayFifo:
    def test_single_server_serializes_in_submit_order(self):
        jobs = [_job(i, submitted=0.0, dispatched=10.0 * i,
                     finished=10.0 * i + 10.0) for i in range(3)]
        out = replay_fifo(jobs, servers=1)
        assert out == {0: (0.0, 10.0), 1: (10.0, 20.0), 2: (20.0, 30.0)}

    def test_enough_servers_run_everything_at_submit(self):
        jobs = [_job(i, submitted=0.0, dispatched=10.0 * i,
                     finished=10.0 * i + 10.0) for i in range(3)]
        out = replay_fifo(jobs, servers=3)
        assert all(start == 0.0 and end == 10.0
                   for start, end in out.values())

    def test_service_override_replaces_traced_service(self):
        jobs = [_job(0, dispatched=0.0, finished=10.0)]
        out = replay_fifo(jobs, servers=1, services={0: 4.0})
        assert out[0] == (0.0, 4.0)

    def test_zero_servers_rejected(self):
        with pytest.raises(ValueError):
            replay_fifo([], servers=0)


class TestProjections:
    def _sequential_jobs(self, n=4, svc=10.0):
        return [_job(i, submitted=0.0, dispatched=svc * i,
                     finished=svc * (i + 1)) for i in range(n)]

    def test_queue_capacity_projection_matches_hand_arithmetic(self):
        jobs = self._sequential_jobs(n=4, svc=10.0)
        p = project_queue_capacity(jobs, queue="q", max_running=1,
                                   new_max_running=2)
        assert p.knob == "queue_capacity"
        assert p.baseline_observed == pytest.approx(40.0)
        assert p.baseline_replayed == pytest.approx(40.0)
        # 4 jobs x 10s through 2 slots: two back-to-back pairs.
        assert p.predicted == pytest.approx(20.0)
        assert p.predicted_delta == pytest.approx(20.0)

    def test_drop_tenant_projection_removes_the_victims_load(self):
        jobs = [
            _job(0, tenant="alice", submitted=0.0, dispatched=0.0,
                 finished=10.0),
            _job(1, tenant="bob", submitted=0.0, dispatched=10.0,
                 finished=20.0),
            _job(2, tenant="alice", submitted=0.0, dispatched=20.0,
                 finished=30.0),
        ]
        p = project_drop_tenant(jobs, queue="q", victim="bob",
                                beneficiary="alice", max_running=1)
        assert p.tenant == "alice"
        assert p.baseline_observed == pytest.approx(30.0)
        # Without bob, alice's two 10s jobs run back to back.
        assert p.predicted == pytest.approx(20.0)

    def test_shed_jobs_never_enter_the_replay(self):
        jobs = self._sequential_jobs(n=2) + [
            _job(9, submitted=0.0, outcome="shed")
        ]
        p = project_queue_capacity(jobs, queue="q", max_running=1,
                                   new_max_running=2)
        assert p.baseline_replayed == pytest.approx(20.0)


def _traced_engine(seed=2011, jobs=3, size=32 * MiB):
    from repro.cluster import MultiTenantEngine, QueueConfig, SchedulerConfig
    from repro.hadoop import WORDCOUNT_PROFILE, HadoopConfig, JobSpec

    engine = MultiTenantEngine(
        [],
        scheduler=SchedulerConfig(policy="fifo"),
        queues=[QueueConfig(name="default", capacity=1.0, max_running=1)],
        hadoop_config=HadoopConfig(map_slots=4, reduce_slots=4),
        seed=seed,
        horizon=600.0,
        observe=True,
    )
    for i in range(jobs):
        tenant = "alice" if i % 2 == 0 else "bob"
        engine.add_job(
            JobSpec(f"job-{i}", input_bytes=size, profile=WORDCOUNT_PROFILE),
            at=float(i), tenant=tenant, seed=seed + i,
        )
    engine.run()
    return engine


class TestTracedRuns:
    @pytest.fixture(scope="class")
    def engine(self):
        return _traced_engine()

    def test_pairing_reconstructs_every_submission(self, engine):
        jobs = jobs_from_tracer(engine.sim.obs.tracer)
        assert len(jobs) == len(engine.records) == 3
        assert all(j.outcome == "done" for j in jobs)
        by_name = {j.name: j for j in jobs}
        for rec in engine.records:
            j = by_name[rec.name]
            assert j.tenant == rec.tenant
            assert j.submitted == pytest.approx(rec.submitted_at)
            assert j.finished == pytest.approx(rec.finished_at)

    def test_queue_wait_matches_the_serial_dispatch(self, engine):
        jobs = sorted(jobs_from_tracer(engine.sim.obs.tracer),
                      key=lambda j: j.submitted)
        assert jobs[0].queue_wait == pytest.approx(0.0)
        # max_running=1: every later job waits for its predecessor.
        assert all(j.queue_wait > 0 for j in jobs[1:])

    def test_blame_buckets_tile_each_tenants_latency(self, engine):
        blame = tenant_blame(engine.sim.obs.tracer)
        assert set(blame) == {"alice", "bob"}
        for entry in blame.values():
            parts = entry["blame_seconds"]
            assert sum(parts.values()) == pytest.approx(
                entry["total_seconds"], rel=1e-6
            )
            assert parts["queue_wait"] >= 0.0
            assert sum(entry["blame_pct"].values()) == pytest.approx(
                100.0, rel=1e-6
            )

    def test_analyze_tenants_report_is_json_ready(self, engine):
        import json

        report = analyze_tenants(engine.sim.obs.tracer)
        assert report["jobs"] == 3
        assert report["completed"] == 3
        assert report["shed"] == 0
        assert report["makespan"] > 0
        json.dumps(report)  # must not raise
