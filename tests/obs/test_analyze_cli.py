"""End-to-end tests for ``python -m repro analyze``."""

import json

import pytest

from repro.obs.analyze_cli import main as analyze_main
from repro.obs.cli import main as trace_main


@pytest.fixture(scope="module")
def fig6_trace(tmp_path_factory):
    out = tmp_path_factory.mktemp("trace") / "fig6.json"
    assert trace_main(["fig6", "--size", "64MB", "--trace-out", str(out)]) == 0
    return out


class TestAnalyzeCli:
    def test_reports_both_systems(self, fig6_trace, capsys):
        assert analyze_main([str(fig6_trace)]) == 0
        out = capsys.readouterr().out
        assert "== hadoop:" in out
        assert "== mpid:" in out
        assert "critical-path blame" in out
        assert "what-if" in out

    def test_blame_pcts_sum_to_100(self, fig6_trace, tmp_path):
        report_path = tmp_path / "report.json"
        assert analyze_main([str(fig6_trace), "--json", str(report_path)]) == 0
        reports = json.loads(report_path.read_text())
        assert set(reports) == {"hadoop", "mpid"}
        for name, report in reports.items():
            pcts = report["critical_path"]["blame_pct"]
            assert sum(pcts.values()) == pytest.approx(100.0), name
            assert report["makespan"] > 0
            assert report["phase_breakdown"]["system"] == name

    def test_system_filter(self, fig6_trace, capsys):
        assert analyze_main([str(fig6_trace), "--system", "mpid"]) == 0
        out = capsys.readouterr().out
        assert "== mpid:" in out
        assert "== hadoop:" not in out

    def test_unknown_system_errors(self, fig6_trace):
        with pytest.raises(SystemExit):
            analyze_main([str(fig6_trace), "--system", "nope"])

    def test_validate_without_manifest_fails_loudly(self, fig6_trace, tmp_path):
        bare = tmp_path / "bare.json"
        bare.write_text(fig6_trace.read_text())
        with pytest.raises(FileNotFoundError, match="manifest"):
            analyze_main([str(bare), "--validate"])


@pytest.fixture(scope="module")
def tenant_store(tmp_path_factory):
    from repro.experiments.capacity import produce_stores

    out = tmp_path_factory.mktemp("stores")
    (path,) = produce_stores(out, seeds=(2011,), horizon=60.0)
    return path


class TestAnalyzeStore:
    def test_jsonl_store_analyzes_via_load_tracer(self, tenant_store, capsys):
        assert analyze_main([str(tenant_store)]) == 0
        out = capsys.readouterr().out
        assert "critical-path blame" in out

    def test_tenants_mode_prints_the_blame_report(self, tenant_store, capsys):
        assert analyze_main([str(tenant_store), "--tenants"]) == 0
        out = capsys.readouterr().out
        assert "tenant" in out.lower()

    def test_tenants_mode_json_report(self, tenant_store, tmp_path):
        report_path = tmp_path / "tenants.json"
        assert analyze_main(
            [str(tenant_store), "--tenants", "--json", str(report_path)]
        ) == 0
        report = json.loads(report_path.read_text())
        assert report["system"] == "tenants"
        assert report["jobs"] >= report["completed"]
        assert "tenants" in report

    def test_tenants_mode_rejects_perfetto_traces(self, fig6_trace):
        with pytest.raises(SystemExit):
            analyze_main([str(fig6_trace), "--tenants"])
