"""Tests for the ASCII Gantt renderer."""

from repro.obs.gantt import ascii_gantt
from repro.obs.observer import Observer


class Clock:
    def __init__(self, t: float = 0.0):
        self.t = t

    def __call__(self) -> float:
        return self.t


def make_obs(num_tracks: int = 2) -> Observer:
    clock = Clock()
    obs = Observer(clock=clock)
    for i in range(num_tracks):
        clock.t = float(i)
        sid = obs.tracer.begin("hadoop.map", f"map{i}", track=f"attempt{i}")
        clock.t = float(i + 2)
        obs.tracer.end(sid)
    return obs


class TestAsciiGantt:
    def test_renders_one_row_per_track(self):
        out = ascii_gantt(make_obs(3), title="demo")
        lines = out.splitlines()
        assert lines[0] == "demo"
        for i in range(3):
            assert any(line.startswith(f"attempt{i}") for line in lines)
        assert "█" in out

    def test_axis_shows_time_extent(self):
        out = ascii_gantt(make_obs(2))
        assert "0s" in out
        assert "3.00s" in out  # last span runs [1, 3]

    def test_empty_observer(self):
        obs = Observer(clock=lambda: 0.0)
        assert ascii_gantt(obs) == "(no spans recorded)"

    def test_category_filter(self):
        obs = make_obs(1)
        assert ascii_gantt(obs, categories={"net"}) == "(no spans recorded)"
        assert "attempt0" in ascii_gantt(obs, categories={"hadoop.map"})

    def test_elides_middle_tracks_beyond_max_rows(self):
        out = ascii_gantt(make_obs(12), max_rows=6)
        assert "more tracks ..." in out
        assert "attempt0" in out  # first wave kept
        assert "attempt11" in out  # last wave kept

    def test_max_tracks_caps_with_footer(self):
        out = ascii_gantt(make_obs(12), max_tracks=4)
        lines = out.splitlines()
        assert lines[-1] == "… 8 more tracks"
        assert "attempt3" in out
        assert "attempt4" not in out  # hard cap: tail is cut, not elided

    def test_max_tracks_no_footer_when_under_cap(self):
        out = ascii_gantt(make_obs(3), max_tracks=10)
        assert "more tracks" not in out

    def test_max_tracks_composes_with_max_rows_elision(self):
        out = ascii_gantt(make_obs(20), max_tracks=10, max_rows=6)
        assert "more tracks ..." in out  # middle elision of the kept 10
        assert out.splitlines()[-1] == "… 10 more tracks"

    def test_long_track_names_truncated(self):
        clock = Clock()
        obs = Observer(clock=clock)
        sid = obs.tracer.begin("c", "s", track="x" * 60)
        clock.t = 1.0
        obs.tracer.end(sid)
        out = ascii_gantt(obs, label_width=10)
        assert "…" in out
        assert "x" * 60 not in out


class TestAlignment:
    """Regression: every rendered line must be the same width — the old
    axis line sized itself with a fixed-width assumption about the time
    label and drifted off the bar columns for large/small t_max."""

    def _line_widths(self, out: str) -> set[int]:
        return {len(line) for line in out.splitlines()}

    def test_all_lines_equal_width(self):
        assert len(self._line_widths(ascii_gantt(make_obs(3)))) == 1

    def test_alignment_survives_wide_time_labels(self):
        clock = Clock()
        obs = Observer(clock=clock)
        sid = obs.tracer.begin("c", "s", track="t")
        clock.t = 12345.678  # 9-char time label
        obs.tracer.end(sid)
        out = ascii_gantt(obs)
        assert len(self._line_widths(out)) == 1
        assert "12345.68s" in out

    def test_alignment_survives_elided_rows(self):
        out = ascii_gantt(make_obs(12), max_rows=6)
        assert len(self._line_widths(out)) == 1

    def test_zero_duration_span_renders_a_tick(self):
        clock = Clock()
        obs = Observer(clock=clock)
        sid = obs.tracer.begin("c", "instant", track="t0")
        obs.tracer.end(sid)  # zero duration
        sid = obs.tracer.begin("c", "long", track="t1")
        clock.t = 100.0
        obs.tracer.end(sid)
        out = ascii_gantt(obs)
        row = next(l for l in out.splitlines() if l.startswith("t0"))
        assert "▏" in row

    def test_zero_duration_does_not_erase_a_real_bar(self):
        clock = Clock()
        obs = Observer(clock=clock)
        a = obs.tracer.begin("c", "long", track="t0")
        clock.t = 100.0
        obs.tracer.end(a)
        b = obs.tracer.begin("c", "instant", track="t0")  # same track, t=100
        obs.tracer.end(b)
        out = ascii_gantt(obs)
        row = next(l for l in out.splitlines() if l.startswith("t0"))
        assert "▏" not in row  # the bar under it wins
