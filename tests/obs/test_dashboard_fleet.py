"""Fleet page and sweep-browser bench discovery (dashboard satellites).

The fleet page is pure server-rendered HTML around one JSON island —
no JS — so the tests assert on the island payload and the rendered
tables.  The sweep-browser tests pin the ``BENCH_scalability.json``
discovery path: the per-node speedups chart like a CSV sweep and gate
failures / history regressions surface in the alerts panel.
"""

import json

from repro.obs.dashboard import (
    build_sweep_data,
    extract_data_island,
    render_fleet_page,
    write_fleet_page,
    write_sweep_browser,
)
from repro.obs.fleet import fleet_summary


def _stores(makespans=(100.0, 150.0), tenants=None):
    from pathlib import Path

    out = []
    for i, makespan in enumerate(makespans):
        out.append((Path(f"run-{i:03d}.jsonl"), {
            "system": "tenants-fair",
            "events": 10,
            "final_time": makespan,
            "counts": {},
            "metrics": {},
            "summary": {
                "policy": "fair", "seed": 2011, "makespan": makespan,
                "jobs": 4, "completed": 4, "failed": 0, "shed": 0,
                "tenants": tenants or {},
            },
        }))
    return out


class TestFleetPage:
    def test_island_round_trips_the_summary(self):
        summary = fleet_summary(_stores(), root_label="fleet")
        html = render_fleet_page(summary)
        data = extract_data_island(html, "fleet-data")
        assert data == json.loads(summary.to_json())

    def test_regressed_store_rows_are_highlighted(self):
        summary = fleet_summary(_stores((100.0, 150.0)), root_label="fleet")
        assert summary.regressions
        html = render_fleet_page(summary)
        assert "var(--alert)" in html
        assert "run-002" not in html  # only the two synthetic stores

    def test_quiet_fleet_renders_without_alerts(self):
        summary = fleet_summary(_stores((100.0, 100.0)), root_label="fleet")
        html = render_fleet_page(summary)
        assert "none detected" in html

    def test_slo_missing_tenant_is_highlighted(self):
        tenants = {"bursty": {
            "queue": "batch", "submitted": 10, "completed": 6, "failed": 0,
            "shed": 4, "unfinished": 0, "slot_seconds": 5.0,
            "latency_p50": 1.0, "latency_p95": 2.0, "latency_p99": 3.0,
            "queue_wait_p95": 1.0, "utilization": 0.5,
        }}
        summary = fleet_summary(
            _stores((100.0, 100.0), tenants=tenants), root_label="fleet"
        )
        html = render_fleet_page(summary)
        assert "bursty" in html and "var(--alert)" in html

    def test_write_fleet_page_accepts_a_directory(self, tmp_path):
        from repro.experiments.capacity import produce_stores

        stores = tmp_path / "stores"
        produce_stores(stores, seeds=(2011,), horizon=60.0)
        out = tmp_path / "pages" / "fleet.html"
        write_fleet_page(out, stores)
        data = extract_data_island(out.read_text(), "fleet-data")
        assert data["totals"]["stores"] == 1

    def test_page_is_self_contained(self):
        html = render_fleet_page(fleet_summary(_stores(), root_label="x"))
        assert "http://" not in html and "https://" not in html


class TestSweepBenchDiscovery:
    def _payload(self, identical=True, deterministic=True):
        leg = {
            "vectorized_s": 1.0, "reference_s": 4.0, "speedup": 4.0,
            "identical": identical, "deterministic": deterministic,
            "events_vectorized": 10, "events_reference": 10,
            "sim_elapsed_s": 5.0,
        }
        return {
            "seed": 2011, "node_counts": [200, 500],
            "per_nodes": {"200": {"single_job": dict(leg)},
                          "500": {"single_job": dict(leg)}},
            "identical": identical, "deterministic": deterministic,
        }

    def test_scalability_json_flattens_into_a_chartable_table(self, tmp_path):
        (tmp_path / "BENCH_scalability.json").write_text(
            json.dumps(self._payload())
        )
        data = build_sweep_data(results_dir=tmp_path)
        table = data["csv"]["BENCH_scalability.json"]
        assert table["header"] == ["nodes", "single_job.speedup"]
        assert [r[0] for r in table["rows"]] == ["200", "500"]
        assert data["alerts"] == []

    def test_gate_failures_surface_as_alerts(self, tmp_path):
        (tmp_path / "BENCH_scalability.json").write_text(
            json.dumps(self._payload(identical=False))
        )
        data = build_sweep_data(results_dir=tmp_path)
        assert any("diverged" in a for a in data["alerts"])

    def test_history_speedup_regression_surfaces_as_alert(self, tmp_path):
        hist = tmp_path / "BENCH_history.jsonl"
        lines = [
            {"created_at": "t0", "git_rev": "aaaa",
             "metrics": {"macro.fig6.speedup": 4.0}},
            {"created_at": "t1", "git_rev": "bbbb",
             "metrics": {"macro.fig6.speedup": 2.0}},
        ]
        hist.write_text("\n".join(json.dumps(e) for e in lines) + "\n")
        data = build_sweep_data(bench_histories=[hist])
        assert any("regressed" in a for a in data["alerts"])

    def test_alert_panel_renders_into_the_page(self, tmp_path):
        (tmp_path / "BENCH_scalability.json").write_text(
            json.dumps(self._payload(deterministic=False))
        )
        out = tmp_path / "sweep.html"
        write_sweep_browser(out, results_dir=tmp_path)
        html = out.read_text()
        data = extract_data_island(html, "sweep-data")
        assert data["alerts"]
        assert "not deterministic" in html
