"""Tests for the span tracer: IDs, nesting, tracks, abort semantics."""

import pytest

from repro.obs.tracer import NULL_TRACER, Instant, Span, SpanTracer, TraceError


class Clock:
    def __init__(self, t: float = 0.0):
        self.t = t

    def __call__(self) -> float:
        return self.t


@pytest.fixture
def clock():
    return Clock()


@pytest.fixture
def tracer(clock):
    return SpanTracer(clock)


class TestBeginEnd:
    def test_basic_span(self, tracer, clock):
        sid = tracer.begin("net", "xfer", track="link0")
        clock.t = 2.5
        tracer.end(sid)
        (span,) = tracer.spans
        assert span.sid == sid == 1
        assert (span.t0, span.t1) == (0.0, 2.5)
        assert span.duration == 2.5
        assert not span.open

    def test_sids_are_one_based_begin_order(self, tracer):
        sids = [tracer.begin("c", f"s{i}") for i in range(3)]
        assert sids == [1, 2, 3]
        assert len(tracer) == 3

    def test_args_merge_begin_and_end(self, tracer):
        sid = tracer.begin("c", "s", track="t", nbytes=10)
        tracer.end(sid, outcome="done")
        assert tracer.spans[0].args == {"nbytes": 10, "outcome": "done"}

    def test_auto_track_is_unique_per_span(self, tracer):
        a = tracer.begin("c", "map3")
        tracer.end(a)
        b = tracer.begin("c", "map3")
        assert tracer.track_of(a) != tracer.track_of(b)

    def test_duration_of_open_span_raises(self, tracer):
        sid = tracer.begin("c", "s")
        with pytest.raises(TraceError):
            tracer.spans[sid - 1].duration

    def test_end_zero_is_noop(self, tracer):
        tracer.end(0)
        assert len(tracer) == 0

    def test_end_unknown_sid_raises(self, tracer):
        with pytest.raises(TraceError):
            tracer.end(7)

    def test_double_end_raises(self, tracer):
        sid = tracer.begin("c", "s")
        tracer.end(sid)
        with pytest.raises(TraceError):
            tracer.end(sid)


class TestNesting:
    def test_implicit_nesting_on_shared_track(self, tracer):
        outer = tracer.begin("c", "outer", track="t")
        inner = tracer.begin("c", "inner", track="t")
        assert tracer.spans[inner - 1].parent == outer

    def test_explicit_parent_inherits_track(self, tracer):
        outer = tracer.begin("c", "outer")
        inner = tracer.begin("c", "inner", parent=outer)
        assert tracer.track_of(inner) == tracer.track_of(outer)
        assert tracer.spans[inner - 1].parent == outer

    def test_unknown_parent_raises(self, tracer):
        with pytest.raises(TraceError):
            tracer.begin("c", "s", parent=9)

    def test_reentrant_names_are_distinct_spans(self, tracer, clock):
        a = tracer.begin("hadoop.map", "map3", track="attempts")
        clock.t = 1.0
        tracer.end(a)
        b = tracer.begin("hadoop.map", "map3", track="attempts")
        clock.t = 3.0
        tracer.end(b)
        spans = list(tracer.by_category("hadoop.map"))
        assert [(s.t0, s.t1) for s in spans] == [(0.0, 1.0), (1.0, 3.0)]
        # The second is NOT a child of the first: it had already closed.
        assert spans[1].parent == 0


class TestAbort:
    def test_abort_closes_open_descendants_lifo(self, tracer, clock):
        task = tracer.begin("c", "task", track="t")
        phase = tracer.begin("c", "phase", track="t")
        sub = tracer.begin("c", "sub", track="t")
        clock.t = 5.0
        tracer.abort(task, outcome="crashed")
        assert tracer.open_spans() == []
        for sid in (task, phase, sub):
            span = tracer.spans[sid - 1]
            assert span.t1 == 5.0
            assert span.args["outcome"] == "crashed"

    def test_abort_already_closed_is_silent(self, tracer):
        sid = tracer.begin("c", "s")
        tracer.end(sid)
        tracer.abort(sid)  # no TraceError

    def test_abort_zero_is_noop(self, tracer):
        tracer.abort(0)

    def test_abort_unknown_sid_raises(self, tracer):
        with pytest.raises(TraceError):
            tracer.abort(4)

    def test_abort_leaves_siblings_on_other_tracks_open(self, tracer):
        a = tracer.begin("c", "a", track="t1")
        b = tracer.begin("c", "b", track="t2")
        tracer.abort(a)
        assert [s.sid for s in tracer.open_spans()] == [b]


class TestQueries:
    def test_instants_and_categories(self, tracer, clock):
        clock.t = 4.0
        tracer.instant("fault", "crash node3", track="faults", node=3)
        tracer.begin("net", "xfer")
        assert tracer.categories() == {"fault", "net"}
        inst = tracer.instants[0]
        assert isinstance(inst, Instant)
        assert (inst.time, inst.args["node"]) == (4.0, 3)

    def test_last_time_covers_open_spans_and_instants(self, tracer, clock):
        tracer.begin("c", "s")  # open: contributes its t0
        clock.t = 9.0
        tracer.instant("c", "i")
        assert tracer.last_time() == 9.0


class TestNullTracer:
    def test_records_nothing(self):
        assert NULL_TRACER.begin("c", "s", nbytes=1) == 0
        NULL_TRACER.end(0)
        NULL_TRACER.abort(0)
        NULL_TRACER.instant("c", "i")
        assert len(NULL_TRACER) == 0
        assert NULL_TRACER.spans == ()
        assert NULL_TRACER.categories() == set()
        assert not NULL_TRACER.enabled
