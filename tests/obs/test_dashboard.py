"""Dashboard HTML: valid JSON island, linked views, resolvable frames.

No browser in CI — these tests parse the generated page the way a
browser would have to: the JSON island must survive a round-trip, every
canvas the inline script draws on must exist in the markup, and every
node/link/flow a frame references must resolve against the replay's
declared node and link lists.
"""

import json
import re

import pytest

from repro.obs.dashboard import (
    build_sweep_data,
    extract_data_island,
    render_dashboard,
    render_sweep_browser,
    write_dashboard,
    write_sweep_browser,
)
from repro.obs.replay import replay_events

#: The four linked views plus their interaction chrome, by element id.
_REQUIRED_IDS = (
    "view-heatmap", "view-flows", "view-stages",
    "spark-inflight", "spark-delivered", "spark-links", "spark-markers",
    "scrub", "play", "sys-select", "markers-list", "replay-data",
)


def tiny_replay(system="hadoop"):
    events = [
        {"k": "begin", "sid": 1, "parent": 0, "cat": "hadoop.map",
         "name": "map0", "track": "a", "t0": 0.0, "args": {"node": 1}},
        {"k": "begin", "sid": 2, "parent": 0, "cat": "net",
         "name": "xfer node1.up->node2.down", "track": "f", "t0": 1.0,
         "args": {"nbytes": 512}},
        {"k": "instant", "t": 2.0, "cat": "fault", "name": "crash node2",
         "track": "faults", "args": {}},
        {"k": "end", "sid": 2, "t1": 3.0, "args": {}},
        {"k": "end", "sid": 1, "t1": 4.0, "args": {}},
        {"k": "sample", "m": "slots.in_use", "t": 1.5, "v": 3.0},
    ]
    return replay_events(events, t_end=4.0, system=system, buckets=8)


class TestDashboardHtml:
    @pytest.fixture(scope="class")
    def html(self):
        return render_dashboard(
            [("hadoop", tiny_replay("hadoop")), ("mpid", tiny_replay("mpid"))],
            title="golden",
        )

    def test_json_island_round_trips(self, html):
        data = extract_data_island(html)
        assert data["title"] == "golden"
        assert set(data["systems"]) == {"hadoop", "mpid"}
        frames = data["systems"]["hadoop"]["frames"]
        assert len(frames) == 8

    def test_island_is_inert_to_the_html_parser(self, html):
        start = html.index('id="replay-data">')
        end = html.index("</script>", start)
        island = html[start:end]
        # "</" never appears un-escaped inside the island, so no payload
        # string can terminate the script element early.
        assert "</" not in island.replace("<\\/", "")

    def test_all_linked_views_present(self, html):
        for element_id in _REQUIRED_IDS:
            assert f'id="{element_id}"' in html, element_id

    def test_frame_references_resolve(self, html):
        data = extract_data_island(html)
        for replay in data["systems"].values():
            nodes, links = set(replay["nodes"]), set(replay["links"])
            for f in replay["frames"]:
                assert set(f["node_map"]) <= nodes
                assert set(f["node_reduce"]) <= nodes
                assert set(f["links"]) <= links
                for pair in f["flows"]:
                    src, dst = pair.split(">")
                    assert {src, dst} <= nodes
                assert f["marker_count"] >= len(f["markers"])

    def test_self_contained_no_external_requests(self, html):
        # One file, openable from disk: no scripts, styles, fonts or
        # images fetched from anywhere.
        assert not re.search(r'\bsrc\s*=\s*"https?://', html)
        assert not re.search(r'\bhref\s*=\s*"https?://', html)
        assert "@import" not in html
        assert html.count("<script") == 2  # the island + the inline app

    def test_light_and_dark_modes_defined(self, html):
        assert "prefers-color-scheme: dark" in html
        assert "--surface" in html and "--seq-hi" in html

    def test_write_dashboard_creates_parents(self, tmp_path):
        out = write_dashboard(tmp_path / "deep" / "dash.html", tiny_replay())
        assert out.read_text().startswith("<!DOCTYPE html>")

    def test_single_replay_shorthand(self):
        html = render_dashboard(tiny_replay("solo"))
        assert set(extract_data_island(html)["systems"]) == {"solo"}

    def test_empty_replay_list_rejected(self):
        with pytest.raises(ValueError, match="no replays"):
            render_dashboard([])


class TestSweepBrowser:
    @pytest.fixture()
    def results_dir(self, tmp_path):
        results = tmp_path / "results"
        results.mkdir()
        (results / "fig6_wordcount.csv").write_text(
            "size_gb,hadoop_s,mpid_s\n1,100,40\n2,210,85\n4,430,170\n"
        )
        (results / "fig6_wordcount.json").write_text(json.dumps(
            {"experiment": "fig6", "sizes": [1, 2, 4]}
        ))
        (results / "notes.json").write_text("not json {")
        return tmp_path

    def test_sweep_data_collects_csv_json_bench(self, results_dir):
        hist = results_dir / "hist.jsonl"
        hist.write_text(
            json.dumps({"created_at": "t0", "git_rev": "a" * 40,
                        "metrics": {"macro.fig6.speedup": 2.5,
                                    "macro.fig6.fast_s": 0.1}}) + "\n"
            "\n"  # blank lines are skipped
            + json.dumps({"created_at": "t1", "git_rev": "b" * 40,
                          "metrics": {"macro.fig6.speedup": 2.6}}) + "\n"
        )
        data = build_sweep_data(results_dir / "results", [hist])
        table = data["csv"]["fig6_wordcount.csv"]
        assert table["header"] == ["size_gb", "hadoop_s", "mpid_s"]
        assert len(table["rows"]) == 3 and not table["truncated"]
        assert data["json"]["fig6_wordcount.json"]["experiment"] == "fig6"
        assert "notes.json" not in data["json"]  # unparseable is skipped
        # Only gated speedup metrics chart; wall-clock noise stays out.
        assert [e["metrics"] for e in data["bench"]] == [
            {"macro.fig6.speedup": 2.5}, {"macro.fig6.speedup": 2.6}]

    def test_oversize_csv_truncates_with_flag(self, tmp_path):
        results = tmp_path / "results"
        results.mkdir()
        rows = "\n".join(f"{i},{i * 2}" for i in range(50))
        (results / "big.csv").write_text("x,y\n" + rows + "\n")
        data = build_sweep_data(results, max_rows=10)
        assert len(data["csv"]["big.csv"]["rows"]) == 10
        assert data["csv"]["big.csv"]["truncated"]

    def test_sweep_page_renders_and_round_trips(self, results_dir):
        out = write_sweep_browser(
            results_dir / "sweep.html", results_dir / "results")
        html = out.read_text()
        data = extract_data_island(html, "sweep-data")
        assert "fig6_wordcount.csv" in data["csv"]
        assert 'id="charts"' in html and 'id="bench"' in html
        assert "<table" in render_sweep_browser(data)  # table view exists

    def test_missing_inputs_yield_empty_but_valid_page(self, tmp_path):
        html = render_sweep_browser(build_sweep_data(
            None, [tmp_path / "absent.jsonl"]))
        data = extract_data_island(html, "sweep-data")
        assert data == {"csv": {}, "json": {}, "bench": [], "alerts": []}
