"""Replay engine: frame conservation laws and live-vs-store agreement.

The replay fold is a lossy aggregation, but several quantities must
survive it exactly:

* a node's time-weighted slot occupancy can never exceed the slots the
  cluster was configured with (and the persisted peak is an integer
  count of real attempts);
* in-flight shuffle bytes return to zero when the job finishes — every
  byte that entered a link came out (or the flow was killed, which also
  closes its span);
* folding the live observer and folding the streamed store of the same
  run produce the same frames.
"""

import math

import pytest

from repro.obs.replay import (
    FRAME_STAGES,
    replay_events,
    replay_observer,
    replay_store,
    replays_from_perfetto,
)


@pytest.fixture(scope="module")
def hadoop_run(tmp_path_factory):
    """One observed 4-map/2-reduce WordCount, streamed to a store too."""
    from repro.hadoop import HadoopConfig, JobSpec, WORDCOUNT_PROFILE
    from repro.hadoop.simulation import HadoopSimulation
    from repro.util.units import MiB

    spec = JobSpec(name="replay", input_bytes=256 * MiB,
                   profile=WORDCOUNT_PROFILE, num_reduce_tasks=2)
    config = HadoopConfig(map_slots=2, reduce_slots=2)
    sim = HadoopSimulation(spec=spec, config=config, observe=True)
    store = tmp_path_factory.mktemp("replay") / "run.store.jsonl"
    with sim.obs.stream_to(store, system="hadoop"):
        sim.run()
    return sim, config, store


class TestConservation:
    def test_occupancy_never_exceeds_configured_slots(self, hadoop_run):
        sim, config, _store = hadoop_run
        r = replay_observer(sim.obs, system="hadoop", buckets=60)
        for f in r.frames:
            for node, occ in f.node_map.items():
                assert occ <= config.map_slots + 1e-9, (f.index, node)
            for node, occ in f.node_reduce.items():
                assert occ <= config.reduce_slots + 1e-9, (f.index, node)
        for node, peaks in r.max_occupancy.items():
            assert peaks.get("map", 0) <= config.map_slots
            assert peaks.get("reduce", 0) <= config.reduce_slots
            for peak in peaks.values():
                assert peak == int(peak)  # whole attempts, not fractions

    def test_inflight_bytes_return_to_zero_at_job_end(self, hadoop_run):
        sim, _config, _store = hadoop_run
        r = replay_observer(sim.obs, system="hadoop", buckets=60)
        assert r.final_inflight_bytes == 0.0
        assert r.total_bytes_delivered > 0
        # The last frame carries the final cumulative total, and the
        # cumulative series never decreases.
        deliveries = [f.bytes_delivered for f in r.frames]
        assert deliveries == sorted(deliveries)
        assert math.isclose(deliveries[-1], r.total_bytes_delivered)

    def test_flow_matrix_endpoints_are_known_nodes(self, hadoop_run):
        sim, _config, _store = hadoop_run
        r = replay_observer(sim.obs, system="hadoop", buckets=60)
        nodes = set(r.nodes)
        assert nodes  # the run shuffled something
        for f in r.frames:
            for pair, nbytes in f.flows.items():
                src, dst = pair.split(">")
                assert src in nodes and dst in nodes
                assert nbytes >= 0
            for link, util in f.links.items():
                assert link in r.links
                assert 0.0 <= util <= 1.0

    def test_stage_mix_covers_all_stages(self, hadoop_run):
        sim, _config, _store = hadoop_run
        r = replay_observer(sim.obs, system="hadoop", buckets=60)
        seen = {s for f in r.frames for s, v in f.stages.items() if v > 0}
        assert seen == set(FRAME_STAGES)
        # Frames are contiguous and cover [0, t_end].
        assert r.frames[0].t0 == 0.0
        assert math.isclose(r.frames[-1].t1, r.t_end)
        for a, b in zip(r.frames, r.frames[1:]):
            assert math.isclose(a.t1, b.t0)


def frames_approx_equal(a, b, *, skip=("samples",)):
    """Frame dicts equal up to float summation order (last-ulp ties)."""
    da, db = a.to_dict(), b.to_dict()
    assert set(da) == set(db)
    for key in da:
        if key in skip:
            continue
        va, vb = da[key], db[key]
        if isinstance(va, dict):
            assert set(va) == set(vb), key
            for k in va:
                assert va[k] == pytest.approx(vb[k]), (key, k)
        elif isinstance(va, float):
            assert va == pytest.approx(vb), key
        else:
            assert va == vb, key


class TestLiveVsStore:
    def test_store_replay_matches_live_replay(self, hadoop_run):
        sim, _config, store = hadoop_run
        live = replay_observer(sim.obs, system="hadoop", buckets=48)
        # Small chunks exercise the O(chunk) read path on a real trace.
        streamed = replay_store(store, buckets=48, chunk_bytes=2048)
        assert streamed.system == "hadoop"
        assert streamed.t_end == live.t_end
        assert streamed.nodes == live.nodes
        assert streamed.links == live.links
        assert streamed.max_occupancy == live.max_occupancy
        assert streamed.spans_seen == live.spans_seen
        assert streamed.final_inflight_bytes == pytest.approx(
            live.final_inflight_bytes, abs=1e-6)
        for fa, fb in zip(live.frames, streamed.frames):
            # `samples` legitimately differ: streamed stores carry
            # histogram transitions that live observers don't retain.
            frames_approx_equal(fa, fb)

    def test_streamed_store_carries_histogram_samples(self, hadoop_run):
        _sim, _config, store = hadoop_run
        streamed = replay_store(store, buckets=48)
        sampled = set()
        for f in streamed.frames:
            sampled.update(f.samples)
        assert sampled  # at least link/slot occupancy histograms streamed

    def test_unclosed_store_needs_explicit_t_end(self, tmp_path):
        path = tmp_path / "open.jsonl"
        path.write_text('{"k":"header","version":1,"system":"x"}\n')
        with pytest.raises(ValueError, match="no footer"):
            replay_store(path)
        r = replay_store(path, t_end=10.0, buckets=5)
        assert len(r.frames) == 5
        assert r.t_end == 10.0


class TestSyntheticFolds:
    """Hand-built event streams with exactly known aggregates."""

    def test_time_weighted_occupancy_mean(self):
        events = [
            {"k": "begin", "sid": 1, "parent": 0, "cat": "hadoop.map",
             "name": "map0", "track": "a", "t0": 0.0, "args": {"node": 1}},
            {"k": "end", "sid": 1, "t1": 5.0, "args": {}},
        ]
        r = replay_events(events, t_end=10.0, buckets=10)
        # One map attempt on node1 for [0, 5): frames 0-4 fully occupied.
        for f in r.frames[:5]:
            assert f.node_map == {"node1": pytest.approx(1.0)}
        for f in r.frames[5:]:
            assert f.node_map == {}
        assert r.max_occupancy == {"node1": {"map": 1.0}}

    def test_partial_bucket_overlap_is_fractional(self):
        events = [
            {"k": "begin", "sid": 1, "parent": 0, "cat": "mpid.map",
             "name": "mapper1", "track": "a", "t0": 2.5, "args": {"node": 0}},
            {"k": "end", "sid": 1, "t1": 7.5, "args": {}},
        ]
        r = replay_events(events, t_end=10.0, buckets=2)
        # Buckets [0,5) and [5,10): the span covers half of each.
        assert r.frames[0].node_map["node0"] == pytest.approx(0.5)
        assert r.frames[1].node_map["node0"] == pytest.approx(0.5)

    def test_flow_accounting(self):
        events = [
            {"k": "begin", "sid": 1, "parent": 0, "cat": "net",
             "name": "xfer node1.up->node2.down", "track": "f", "t0": 0.0,
             "args": {"nbytes": 1000}},
            {"k": "end", "sid": 1, "t1": 4.0, "args": {}},
        ]
        r = replay_events(events, t_end=8.0, buckets=2)
        f0, f1 = r.frames
        assert f0.flows == {"node1>node2": pytest.approx(1000.0)}
        assert f0.links == {"node1.up": pytest.approx(1.0),
                            "node2.down": pytest.approx(1.0)}
        assert f0.inflight_bytes == pytest.approx(1000.0)
        assert f1.flows == {}
        assert f1.bytes_delivered == pytest.approx(1000.0)
        assert r.final_inflight_bytes == 0.0
        assert r.total_bytes_delivered == pytest.approx(1000.0)
        assert r.nodes == ["node1", "node2"]

    def test_markers_capped_but_counted(self):
        events = [
            {"k": "instant", "t": 0.5, "cat": "fault", "name": f"crash {i}",
             "track": "faults", "args": {}}
            for i in range(150)
        ]
        r = replay_events(events, t_end=1.0, buckets=1)
        f = r.frames[0]
        assert f.marker_count == 150
        assert len(f.markers) == 100  # MARKERS_PER_FRAME cap
        assert r.total_markers == 150

    def test_sample_series_limit_drops_and_reports(self):
        events = [
            {"k": "sample", "m": f"metric{i}", "t": 0.1, "v": float(i)}
            for i in range(10)
        ]
        r = replay_events(events, t_end=1.0, buckets=1,
                          sample_series_limit=3)
        assert len(r.frames[0].samples) == 3
        assert len(r.samples_dropped) == 7


class TestPerfettoReplay:
    def test_trace_json_replays_per_process(self, tmp_path):
        from repro.obs.cli import main as trace_main

        trace = tmp_path / "t.json"
        assert trace_main(["fig6", "--size", "64MB",
                           "--trace-out", str(trace)]) == 0
        replays = replays_from_perfetto(trace, buckets=30)
        assert set(replays) == {"hadoop", "mpid"}
        for r in replays.values():
            assert r.spans_seen > 0
            assert r.final_inflight_bytes == pytest.approx(0.0, abs=1e-6)
