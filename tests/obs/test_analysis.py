"""Tests for the trace-DAG builder, critical-path walker, and what-ifs."""

import pytest

from repro.obs.analysis import (
    STAGES,
    TraceDAG,
    critical_path,
    dags_from_trace,
    phase_breakdown,
    span_slack,
    stage_of,
    what_if,
    what_if_table,
)
from repro.obs.observer import Observer
from repro.obs.perfetto import trace_events
from repro.obs.tracer import NULL_TRACER, SpanTracer, TraceError


class Clock:
    def __init__(self, t: float = 0.0):
        self.t = t

    def __call__(self) -> float:
        return self.t


@pytest.fixture
def clock():
    return Clock()


@pytest.fixture
def tracer(clock):
    return SpanTracer(clock)


class TestEdges:
    def test_edge_records_src_dst_kind_time(self, tracer, clock):
        a = tracer.begin("c", "a")
        b = tracer.begin("c", "b")
        clock.t = 3.0
        tracer.edge(a, b, "shuffle", map_id=7)
        (edge,) = tracer.edges
        assert (edge.src, edge.dst, edge.kind, edge.time) == (a, b, "shuffle", 3.0)
        assert edge.args == {"map_id": 7}

    def test_zero_sid_is_noop(self, tracer):
        a = tracer.begin("c", "a")
        tracer.edge(0, a)
        tracer.edge(a, 0)
        assert tracer.edges == []

    def test_unknown_sid_raises(self, tracer):
        a = tracer.begin("c", "a")
        with pytest.raises(TraceError):
            tracer.edge(a, 99)
        with pytest.raises(TraceError):
            tracer.edge(99, a)

    def test_self_edge_raises(self, tracer):
        a = tracer.begin("c", "a")
        with pytest.raises(TraceError):
            tracer.edge(a, a)

    def test_null_tracer_ignores_edges(self):
        NULL_TRACER.edge(1, 2, "dep")
        assert NULL_TRACER.edges == ()

    def test_disabled_tracer_ignores_edges(self, clock):
        t = SpanTracer(clock)
        t.enabled = False
        t.edge(1, 2)
        assert t.edges == []


class TestStageOf:
    def test_hadoop_phases(self):
        assert stage_of("hadoop.map", "map3") == "map"
        assert stage_of("hadoop.reduce", "copy") == "copy"
        assert stage_of("hadoop.reduce", "sort") == "sort"
        assert stage_of("hadoop.reduce", "reduce") == "reduce"
        assert stage_of("hadoop.job", "wc") == "idle"

    def test_mpid_phases(self):
        assert stage_of("mpid.map", "map") == "map"
        assert stage_of("mpid.reduce", "recv") == "copy"
        assert stage_of("mpid.reduce", "merge") == "sort"
        assert stage_of("mpid.reduce", "write") == "reduce"

    def test_transport_counts_as_copy(self):
        assert stage_of("transport.jetty", "fetch r0<-n3") == "copy"

    def test_net_inherits_enclosing_stage(self):
        assert stage_of("net", "xfer a->b") is None


def _diamond(clock, tracer):
    """root [0,10]; map w1 [0,4]; copy w2 [2,9] waits on w1 (avail edge)
    and completes the job.  The canonical map-gates-copy shape."""
    root = tracer.begin("hadoop.job", "job", track="job")
    w1 = tracer.begin("hadoop.map", "map0", track="w1")
    clock.t = 2.0
    w2 = tracer.begin("hadoop.reduce", "copy", track="w2")
    clock.t = 4.0
    tracer.end(w1)
    tracer.edge(w1, w2, "avail")
    clock.t = 9.0
    tracer.edge(w2, root, "complete")
    tracer.end(w2)
    clock.t = 10.0
    tracer.end(root)
    return root, w1, w2


class TestCriticalPath:
    def test_blame_tiles_the_makespan(self, clock, tracer):
        _diamond(clock, tracer)
        dag = TraceDAG.from_tracer(tracer)
        cp = critical_path(dag)
        assert cp.makespan == pytest.approx(10.0)
        assert sum(cp.blame().values()) == pytest.approx(10.0)
        assert sum(cp.blame_pct().values()) == pytest.approx(100.0)

    def test_walk_descends_through_edges(self, clock, tracer):
        _diamond(clock, tracer)
        dag = TraceDAG.from_tracer(tracer)
        cp = critical_path(dag)
        blame = cp.blame()
        # job self [9,10] idle; copy self [4,9]; map [0,4] via avail edge.
        assert blame["idle"] == pytest.approx(1.0)
        assert blame["copy"] == pytest.approx(5.0)
        assert blame["map"] == pytest.approx(4.0)

    def test_pred_starting_before_parent_does_not_double_count(
        self, clock, tracer
    ):
        # A predecessor that begins before its dependent span's own start
        # must not make the walk re-cover the overlap (the >100% bug).
        root = tracer.begin("hadoop.job", "job", track="job")
        long_map = tracer.begin("hadoop.map", "map0", track="m")
        clock.t = 2.0
        late = tracer.begin("hadoop.reduce", "copy", track="r")
        clock.t = 8.0
        tracer.end(long_map)
        tracer.edge(long_map, late, "avail")
        clock.t = 9.0
        tracer.edge(late, root, "complete")
        tracer.end(late)
        clock.t = 10.0
        tracer.end(root)
        dag = TraceDAG.from_tracer(tracer)
        cp = critical_path(dag)
        assert sum(cp.blame().values()) == pytest.approx(10.0)
        assert sum(cp.blame_pct().values()) == pytest.approx(100.0)

    def test_childless_root_blames_itself(self, clock, tracer):
        tracer.begin("hadoop.job", "solo", track="t")
        clock.t = 5.0
        tracer.end(1)
        cp = critical_path(TraceDAG.from_tracer(tracer))
        assert cp.blame() == {"idle": pytest.approx(5.0)}


class TestSlack:
    def test_critical_spans_have_zero_slack(self, clock, tracer):
        root, w1, w2 = _diamond(clock, tracer)
        slack = span_slack(TraceDAG.from_tracer(tracer))
        assert slack[root] == pytest.approx(0.0)
        assert slack[w2] == pytest.approx(0.0)
        # w1 gates w2's last 5s, and w2 gates the job's last 1s: the
        # whole chain is tight, so w1 has zero slack too.
        assert slack[w1] == pytest.approx(0.0)

    def test_span_with_no_downstream_chain_has_slack(self, clock, tracer):
        root = tracer.begin("hadoop.job", "job", track="job")
        early = tracer.begin("hadoop.map", "early", track="e")
        clock.t = 1.0
        tracer.end(early)
        clock.t = 10.0
        tracer.end(root)
        slack = span_slack(TraceDAG.from_tracer(tracer))
        assert slack[early] == pytest.approx(9.0)


class TestWhatIf:
    def test_prediction_subtracts_stage_share(self, clock, tracer):
        _diamond(clock, tracer)
        cp = critical_path(TraceDAG.from_tracer(tracer))
        wi = what_if(cp, "copy", 0.5)
        assert wi.baseline_makespan == pytest.approx(10.0)
        assert wi.predicted_makespan == pytest.approx(10.0 - 0.5 * 5.0)
        assert wi.predicted_delta == pytest.approx(2.5)  # seconds saved

    def test_bad_pct_raises(self, clock, tracer):
        _diamond(clock, tracer)
        cp = critical_path(TraceDAG.from_tracer(tracer))
        with pytest.raises(ValueError):
            what_if(cp, "copy", 1.0)
        with pytest.raises(ValueError):
            what_if(cp, "copy", -0.1)

    def test_table_sorted_by_stage_share(self, clock, tracer):
        _diamond(clock, tracer)
        cp = critical_path(TraceDAG.from_tracer(tracer))
        rows = what_if_table(cp, pcts=(0.5,))
        assert rows[0].target == "copy"  # 5s on path, the biggest


class TestRoundTrip:
    """Tracer -> Perfetto JSON -> DAG must be lossless for analysis."""

    def _observer(self):
        clock = Clock()
        obs = Observer(clock=clock)
        return clock, obs

    def test_flow_events_carry_edges(self):
        clock, obs = self._observer()
        a = obs.tracer.begin("c", "a", track="t1")
        b = obs.tracer.begin("c", "b", track="t2")
        clock.t = 1.0
        obs.tracer.end(a)
        obs.tracer.edge(a, b, "shuffle", map_id=3)
        clock.t = 2.0
        obs.tracer.end(b)
        events = trace_events(obs, pid_name="sys")
        starts = [e for e in events if e["ph"] == "s"]
        finishes = [e for e in events if e["ph"] == "f"]
        assert len(starts) == len(finishes) == 1
        assert starts[0]["name"] == "shuffle"
        assert starts[0]["args"]["src"] == a
        assert starts[0]["args"]["dst"] == b
        assert starts[0]["id"] == finishes[0]["id"]

    def test_dag_round_trip_preserves_spans_and_edges(self):
        clock, obs = self._observer()
        a = obs.tracer.begin("hadoop.map", "map0", track="t1")
        clock.t = 2.0
        obs.tracer.end(a)
        b = obs.tracer.begin("hadoop.reduce", "copy", track="t2")
        obs.tracer.edge(a, b, "avail")
        clock.t = 5.0
        obs.tracer.end(b)
        live = TraceDAG.from_observer(obs, name="sys")
        rebuilt = dags_from_trace(
            {"traceEvents": trace_events(obs, pid_name="sys")}
        )["sys"]
        assert set(rebuilt.spans) == set(live.spans)
        for sid, span in live.spans.items():
            other = rebuilt.spans[sid]
            assert (other.category, other.name, other.parent) == (
                span.category, span.name, span.parent
            )
            assert other.t0 == pytest.approx(span.t0, abs=1e-6)
            assert other.t1 == pytest.approx(span.t1, abs=1e-6)
        assert rebuilt.edges == live.edges


class TestMinimalHadoopJob:
    """DAG reconstruction on a real 2-map/1-reduce WordCount."""

    @pytest.fixture(scope="class")
    def job(self):
        from repro.hadoop import HadoopConfig, JobSpec, WORDCOUNT_PROFILE
        from repro.hadoop.simulation import HadoopSimulation
        from repro.util.units import MiB

        spec = JobSpec(
            name="tiny",
            input_bytes=128 * MiB,  # two 64 MB blocks -> two map tasks
            profile=WORDCOUNT_PROFILE,
            num_reduce_tasks=1,
        )
        sim = HadoopSimulation(spec=spec, config=HadoopConfig(), observe=True)
        metrics = sim.run()
        return sim, metrics

    def test_dag_has_both_maps_and_the_reduce(self, job):
        sim, _metrics = job
        dag = TraceDAG.from_observer(sim.obs, name="hadoop")
        maps = [
            s for s in dag.spans.values()
            if s.category == "hadoop.map" and s.parent == 0
        ]
        reduces = [
            s for s in dag.spans.values()
            if s.category == "hadoop.reduce" and s.parent == 0
        ]
        assert len(maps) == 2
        assert len(reduces) == 1

    def test_shuffle_edges_link_maps_to_fetches(self, job):
        sim, _metrics = job
        dag = TraceDAG.from_observer(sim.obs, name="hadoop")
        shuffle = [e for e in dag.edges if e[2] == "shuffle"]
        assert len(shuffle) == 2  # one per map output
        for src, dst, _kind in shuffle:
            assert dag.spans[src].category == "hadoop.map"
            assert dag.spans[dst].category == "transport.jetty"

    def test_blame_sums_to_100(self, job):
        sim, _metrics = job
        cp = critical_path(TraceDAG.from_observer(sim.obs, name="hadoop"))
        assert sum(cp.blame_pct().values()) == pytest.approx(100.0)
        assert set(cp.blame()) <= set(STAGES)

    def test_phase_breakdown_matches_job_metrics(self, job):
        sim, metrics = job
        pb = phase_breakdown(TraceDAG.from_observer(sim.obs, name="hadoop"))
        assert pb["system"] == "hadoop"
        assert pb["copy_pct"] == pytest.approx(
            100.0 * metrics.copy_fraction, abs=0.1
        )

    def test_perfetto_round_trip_keeps_the_critical_path(self, job):
        sim, _metrics = job
        live = TraceDAG.from_observer(sim.obs, name="hadoop")
        rebuilt = dags_from_trace(
            {"traceEvents": trace_events(sim.obs, pid_name="hadoop")}
        )["hadoop"]
        b1 = critical_path(live).blame()
        b2 = critical_path(rebuilt).blame()
        assert set(b1) == set(b2)
        for stage, seconds in b1.items():
            assert b2[stage] == pytest.approx(seconds, abs=1e-3)
