"""End-to-end tests for ``python -m repro trace``."""

import csv
import json

from repro.obs.cli import main as trace_main
from repro.obs.perfetto import categories_in, validate_trace


class TestTraceCli:
    def test_fig6_writes_trace_manifest_metrics_gantt(self, tmp_path, capsys):
        trace = tmp_path / "out.json"
        metrics = tmp_path / "metrics.csv"
        rc = trace_main(
            [
                "fig6",
                "--size", "64MB",
                "--trace-out", str(trace),
                "--metrics-out", str(metrics),
                "--gantt",
            ]
        )
        assert rc == 0

        events = validate_trace(trace)
        cats = categories_in(events)
        assert {"kernel", "net", "hadoop.map", "hadoop.reduce",
                "mpid.map", "mpid.reduce"} <= cats
        # Two processes: the Hadoop run and the MPI-D run.
        assert {ev["pid"] for ev in events} == {1, 2}

        manifest = json.loads((tmp_path / "out.json.manifest.json").read_text())
        assert manifest["experiment"] == "fig6"
        assert manifest["seed"] == 2011
        assert set(manifest["event_counts"]) == {"hadoop", "mpid"}
        assert manifest["event_counts"]["hadoop"]["spans"] > 0

        with metrics.open() as fh:
            rows = list(csv.reader(fh))
        assert rows[0][:2] == ["system", "metric"]
        assert {r[0] for r in rows[1:]} == {"hadoop", "mpid"}

        out = capsys.readouterr().out
        assert "wrote" in out
        assert "simulated seconds" in out

    def test_fault_experiment_records_fault_instants(self, tmp_path):
        trace = tmp_path / "fault.json"
        rc = trace_main(
            ["fault", "--size", "64MB", "--rate", "200",
             "--trace-out", str(trace)]
        )
        assert rc == 0
        events = validate_trace(trace)
        assert "fault" in categories_in(events)


class TestOutDirStreamDashboard:
    def test_out_dir_collects_every_artifact(self, tmp_path, capsys):
        out_dir = tmp_path / "run"
        rc = trace_main(
            [
                "fig1",
                "--size", "64MB",
                "--out-dir", str(out_dir),
                "--stream",
                "--dashboard",
                "--metrics-out", "metrics.csv",
            ]
        )
        assert rc == 0
        # Trace, manifest, metrics, store and dashboard all land together.
        assert (out_dir / "trace.json").exists()
        assert (out_dir / "trace.json.manifest.json").exists()
        assert (out_dir / "metrics.csv").exists()
        store = out_dir / "fig1.hadoop.store.jsonl"
        assert store.exists()
        assert (out_dir / "dashboard.html").exists()

        from repro.obs.store import load_tracer, read_footer

        footer = read_footer(store)
        assert footer["system"] == "hadoop"
        assert footer["counts"]["begin"] == len(load_tracer(store).spans)

        out = capsys.readouterr().out
        assert "streamed trace store" in out
        assert "dashboard.html — open it in a browser" in out

    def test_stream_writes_one_store_per_system(self, tmp_path):
        out_dir = tmp_path / "run"
        rc = trace_main(
            ["fig6", "--size", "64MB", "--out-dir", str(out_dir), "--stream"]
        )
        assert rc == 0
        assert (out_dir / "fig6.hadoop.store.jsonl").exists()
        assert (out_dir / "fig6.mpid.store.jsonl").exists()

    def test_metrics_csv_carries_percentile_columns(self, tmp_path):
        out_dir = tmp_path / "run"
        rc = trace_main(
            ["fig1", "--size", "64MB", "--out-dir", str(out_dir),
             "--metrics-out", "metrics.csv"]
        )
        assert rc == 0
        with (out_dir / "metrics.csv").open() as fh:
            rows = list(csv.reader(fh))
        assert rows[0] == ["system", "metric", "type", "value", "mean",
                           "min", "max", "p50", "p95", "p99", "events"]
        hist_rows = [r for r in rows[1:] if r[2] == "histogram"]
        assert hist_rows  # slot/link occupancy histograms present
        assert all(r[7] != "" for r in hist_rows)  # p50 populated

    def test_gantt_limit_caps_tracks(self, tmp_path, capsys):
        rc = trace_main(
            ["fig6", "--size", "64MB",
             "--trace-out", str(tmp_path / "t.json"),
             "--gantt", "--gantt-limit", "3"]
        )
        assert rc == 0
        assert "more tracks" in capsys.readouterr().out


class TestReplayCli:
    def test_replay_experiment_writes_dashboard(self, tmp_path, capsys):
        from repro.obs.replay_cli import main as replay_main

        out = tmp_path / "dash.html"
        frames = tmp_path / "frames.json"
        rc = replay_main(
            ["fig6", "--size", "64MB", "--buckets", "40",
             "--out", str(out), "--json-out", str(frames)]
        )
        assert rc == 0
        from repro.obs.dashboard import extract_data_island

        data = extract_data_island(out.read_text())
        assert set(data["systems"]) == {"hadoop", "mpid"}
        assert len(data["systems"]["hadoop"]["frames"]) == 40
        payload = json.loads(frames.read_text())
        assert set(payload) == {"hadoop", "mpid"}
        assert "open it in a browser" in capsys.readouterr().out

    def test_replay_store_file(self, tmp_path):
        from repro.obs.replay_cli import main as replay_main

        out_dir = tmp_path / "run"
        assert trace_main(["fig1", "--size", "64MB",
                           "--out-dir", str(out_dir), "--stream"]) == 0
        dash = tmp_path / "store_dash.html"
        rc = replay_main(
            [str(out_dir / "fig1.hadoop.store.jsonl"), "--out", str(dash)]
        )
        assert rc == 0
        assert "view-heatmap" in dash.read_text()

    def test_replay_perfetto_trace(self, tmp_path):
        from repro.obs.replay_cli import main as replay_main

        trace = tmp_path / "t.json"
        assert trace_main(["fig1", "--size", "64MB",
                           "--trace-out", str(trace)]) == 0
        dash = tmp_path / "dash.html"
        assert replay_main([str(trace), "--out", str(dash)]) == 0
        from repro.obs.dashboard import extract_data_island

        assert "hadoop" in extract_data_island(dash.read_text())["systems"]

    def test_replay_sweep_browser(self, tmp_path, capsys):
        from repro.obs.replay_cli import main as replay_main

        results = tmp_path / "results"
        results.mkdir()
        (results / "fig6_wordcount.csv").write_text(
            "size_gb,hadoop_s,mpid_s\n1,100,40\n")
        out = tmp_path / "sweep.html"
        rc = replay_main(
            ["sweep", "--results-dir", str(results), "--bench",
             "--out", str(out)]
        )
        assert rc == 0
        assert 'id="sweep-data"' in out.read_text()

    def test_unknown_target_errors(self, capsys):
        import pytest

        from repro.obs.replay_cli import main as replay_main

        with pytest.raises(SystemExit):
            replay_main(["not-a-thing"])
        assert "unknown target" in capsys.readouterr().err


class TestMainDispatch:
    def test_bare_invocation_lists_commands(self, capsys):
        from repro.__main__ import main

        assert main([]) == 0
        out = capsys.readouterr().out
        assert "python -m repro trace" in out
        assert "python -m repro replay" in out
        assert "fig6_wordcount" in out

    def test_replay_dispatch(self, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "sweep.html"
        rc = main(["replay", "sweep", "--results-dir",
                   str(tmp_path / "none"), "--bench", "--out", str(out)])
        assert rc == 0
        assert out.exists()
