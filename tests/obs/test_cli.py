"""End-to-end tests for ``python -m repro trace``."""

import csv
import json

from repro.obs.cli import main as trace_main
from repro.obs.perfetto import categories_in, validate_trace


class TestTraceCli:
    def test_fig6_writes_trace_manifest_metrics_gantt(self, tmp_path, capsys):
        trace = tmp_path / "out.json"
        metrics = tmp_path / "metrics.csv"
        rc = trace_main(
            [
                "fig6",
                "--size", "64MB",
                "--trace-out", str(trace),
                "--metrics-out", str(metrics),
                "--gantt",
            ]
        )
        assert rc == 0

        events = validate_trace(trace)
        cats = categories_in(events)
        assert {"kernel", "net", "hadoop.map", "hadoop.reduce",
                "mpid.map", "mpid.reduce"} <= cats
        # Two processes: the Hadoop run and the MPI-D run.
        assert {ev["pid"] for ev in events} == {1, 2}

        manifest = json.loads((tmp_path / "out.json.manifest.json").read_text())
        assert manifest["experiment"] == "fig6"
        assert manifest["seed"] == 2011
        assert set(manifest["event_counts"]) == {"hadoop", "mpid"}
        assert manifest["event_counts"]["hadoop"]["spans"] > 0

        with metrics.open() as fh:
            rows = list(csv.reader(fh))
        assert rows[0][:2] == ["system", "metric"]
        assert {r[0] for r in rows[1:]} == {"hadoop", "mpid"}

        out = capsys.readouterr().out
        assert "wrote" in out
        assert "simulated seconds" in out

    def test_fault_experiment_records_fault_instants(self, tmp_path):
        trace = tmp_path / "fault.json"
        rc = trace_main(
            ["fault", "--size", "64MB", "--rate", "200",
             "--trace-out", str(trace)]
        )
        assert rc == 0
        events = validate_trace(trace)
        assert "fault" in categories_in(events)


class TestMainDispatch:
    def test_bare_invocation_lists_commands(self, capsys):
        from repro.__main__ import main

        assert main([]) == 0
        out = capsys.readouterr().out
        assert "python -m repro trace" in out
        assert "fig6_wordcount" in out
