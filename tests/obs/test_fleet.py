"""The fleet aggregator contract (:mod:`repro.obs.fleet`).

Synthetic-footer tests pin the rollup arithmetic (tenant merge,
regression flagging, histogram merge); the end-to-end test produces a
real seeded multi-tenant store twice and pins the CI fleet-smoke
contract — same seed, byte-identical store files and fleet JSON.
"""

import json
from pathlib import Path

import pytest

from repro.obs.fleet import (
    DEFAULT_REGRESSION_THRESHOLD,
    FleetSummary,
    fleet_summary,
    scan_stores,
)


def _footer(
    store: str,
    system: str = "tenants-fair",
    events: int = 100,
    makespan: float = 100.0,
    completed: int = 10,
    tenants: dict | None = None,
    metrics: dict | None = None,
) -> tuple[Path, dict]:
    return Path(store), {
        "system": system,
        "events": events,
        "final_time": makespan,
        "counts": {},
        "metrics": metrics or {},
        "summary": {
            "policy": "fair",
            "seed": 2011,
            "makespan": makespan,
            "jobs": completed,
            "completed": completed,
            "failed": 0,
            "shed": 0,
            "tenants": tenants or {},
        },
    }


def _tenant(
    submitted=10,
    completed=10,
    shed=0,
    latency_p95=20.0,
    utilization=0.5,
):
    return {
        "queue": "batch",
        "submitted": submitted,
        "completed": completed,
        "failed": 0,
        "shed": shed,
        "unfinished": submitted - completed - shed,
        "slot_seconds": 100.0,
        "latency_p50": latency_p95 / 2,
        "latency_p95": latency_p95,
        "latency_p99": latency_p95 * 1.5,
        "queue_wait_p95": 5.0,
        "utilization": utilization,
    }


class TestMergeTenants:
    def test_counts_sum_and_percentiles_take_the_worst_case(self):
        stores = [
            _footer("a.jsonl", tenants={"batch": _tenant(latency_p95=20.0,
                                                         utilization=0.4)}),
            _footer("b.jsonl", tenants={"batch": _tenant(latency_p95=35.0,
                                                         utilization=0.6)}),
        ]
        summary = fleet_summary(stores)
        t = summary.tenants["batch"]
        assert t["runs"] == 2
        assert t["submitted"] == 20
        assert t["completed"] == 20
        assert t["latency_p95"] == 35.0  # max across runs, not mean
        assert t["utilization"] == pytest.approx(0.5)  # mean across runs
        assert t["attainment"] == pytest.approx(1.0)

    def test_attainment_counts_shed_submissions_against_the_tenant(self):
        stores = [
            _footer("a.jsonl", tenants={"x": _tenant(submitted=10,
                                                     completed=7, shed=3)}),
        ]
        t = fleet_summary(stores).tenants["x"]
        assert t["attainment"] == pytest.approx(0.7)
        assert t["shed"] == 3


class TestRegressions:
    def test_makespan_growth_past_threshold_is_flagged(self):
        stores = [
            _footer("run-001.jsonl", makespan=100.0),
            _footer("run-002.jsonl", makespan=150.0),
        ]
        regs = fleet_summary(stores).regressions
        assert [r["kind"] for r in regs] == ["makespan"]
        assert regs[0]["from_store"] == "run-001.jsonl"
        assert regs[0]["to_store"] == "run-002.jsonl"
        assert regs[0]["ratio"] == pytest.approx(1.5)

    def test_completed_drop_past_threshold_is_flagged(self):
        stores = [
            _footer("run-001.jsonl", completed=10),
            _footer("run-002.jsonl", completed=5),
        ]
        regs = fleet_summary(stores).regressions
        assert [r["kind"] for r in regs] == ["completed"]

    def test_within_threshold_runs_are_quiet(self):
        stores = [
            _footer("run-001.jsonl", makespan=100.0, completed=10),
            _footer("run-002.jsonl",
                    makespan=100.0 * (1 + DEFAULT_REGRESSION_THRESHOLD),
                    completed=10),
        ]
        assert fleet_summary(stores).regressions == []

    def test_different_systems_never_compare(self):
        stores = [
            _footer("run-001.jsonl", system="tenants-fair", makespan=100.0),
            _footer("run-002.jsonl", system="tenants-fifo", makespan=900.0),
        ]
        assert fleet_summary(stores).regressions == []


class TestHistograms:
    def test_tenant_histograms_merge_with_non_blank_percentiles(self):
        snap = {
            "type": "histogram",
            "mean": 1.0, "min": 0.0, "max": 2.0,
            "p50": 1.0, "p95": 2.0, "p99": 2.0,
            "transitions": 4, "total_seconds": 10.0,
            "value_seconds": {"1.0": 5.0, "2.0": 5.0},
        }
        stores = [
            _footer("a.jsonl", metrics={"tenants.batch.running": snap,
                                        "host.load": snap}),
            _footer("b.jsonl", metrics={"tenants.batch.running": snap}),
        ]
        summary = fleet_summary(stores)
        # Only tenants./queues. metrics merge; host.* stays per-store.
        assert set(summary.histograms) == {"tenants.batch.running"}
        merged = summary.histograms["tenants.batch.running"]
        assert merged["total_seconds"] == pytest.approx(20.0)
        header, rows = summary.metric_rows()
        assert rows, "merged histograms must render as rows"
        row = dict(zip(header, rows[0]))
        assert row["p50"] != "" and row["p95"] != "" and row["p99"] != ""


class TestScanAndSerialize:
    def test_footerless_stores_are_skipped(self, tmp_path):
        (tmp_path / "live.jsonl").write_text('{"k":"event"}\n')
        assert scan_stores(tmp_path) == []

    def test_to_json_is_canonical(self):
        summary = fleet_summary([_footer("a.jsonl")], root_label="x")
        payload = json.loads(summary.to_json())
        assert payload["root"] == "x"
        assert summary.to_json() == json.dumps(
            summary.to_dict(), indent=2, sort_keys=True
        )

    def test_totals_roll_up_across_stores(self):
        summary = fleet_summary([
            _footer("a.jsonl", events=100, completed=10, makespan=50.0),
            _footer("b.jsonl", events=50, completed=4, makespan=40.0),
        ])
        assert summary.totals["stores"] == 2
        assert summary.totals["events"] == 150
        assert summary.totals["completed"] == 14
        assert summary.totals["final_time"] == 50.0


class TestEndToEnd:
    def test_same_seed_stores_and_fleet_json_are_byte_identical(
        self, tmp_path
    ):
        from repro.experiments.capacity import produce_stores

        dirs = []
        for name in ("a", "b"):
            out = tmp_path / name
            paths = produce_stores(out, seeds=(2011,), horizon=60.0)
            assert len(paths) == 1
            dirs.append(out)
        store_a = next(dirs[0].glob("*.jsonl"))
        store_b = next(dirs[1].glob("*.jsonl"))
        assert store_a.read_bytes() == store_b.read_bytes()

        json_a = fleet_summary(dirs[0], root_label="fleet").to_json()
        json_b = fleet_summary(dirs[1], root_label="fleet").to_json()
        assert json_a == json_b

        summary = fleet_summary(dirs[0], root_label="fleet")
        assert isinstance(summary, FleetSummary)
        assert summary.totals["stores"] == 1
        row = summary.stores[0]
        assert row["system"] == "tenants-fair"
        assert "blame" in row, "footer must carry the per-tenant blame mix"
