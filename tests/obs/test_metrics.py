"""Tests for counters, gauges, time-weighted histograms and the registry."""

import pytest

from repro.obs.metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    MetricsRegistry,
    TimeWeightedHistogram,
)


class Clock:
    def __init__(self, t: float = 0.0):
        self.t = t

    def __call__(self) -> float:
        return self.t


class TestCounter:
    def test_accumulates_value_and_events(self):
        c = Counter("bytes")
        c.add(10)
        c.add(5.5)
        c.add()
        assert c.value == 16.5
        assert c.events == 3
        assert c.to_dict() == {"type": "counter", "value": 16.5, "events": 3}


class TestGauge:
    def test_keeps_every_sample(self):
        clock = Clock()
        g = Gauge("depth", clock)
        g.set(2)
        clock.t = 3.0
        g.set(7)
        clock.t = 4.0
        g.set(1)
        assert g.samples == [(0.0, 2.0), (3.0, 7.0), (4.0, 1.0)]
        assert g.to_dict() == {"type": "gauge", "value": 1.0, "samples": 3, "max": 7.0}


class TestTimeWeightedHistogram:
    def test_mean_is_time_weighted(self):
        # Value 0 for 2s, then 3 for 1s: mean = (0*2 + 3*1) / 3 = 1.0 —
        # an arithmetic mean of the transition values would say 1.5.
        clock = Clock()
        h = TimeWeightedHistogram("q", clock)
        clock.t = 2.0
        h.set(3)
        clock.t = 3.0
        assert h.mean() == pytest.approx(1.0)
        assert h.elapsed() == 3.0

    def test_mean_includes_tail_since_last_transition(self):
        clock = Clock()
        h = TimeWeightedHistogram("q", clock)
        h.set(4)  # at t=0, never touched again
        clock.t = 10.0
        assert h.mean() == pytest.approx(4.0)

    def test_mean_at_explicit_until(self):
        clock = Clock()
        h = TimeWeightedHistogram("q", clock)
        h.set(2)
        clock.t = 100.0  # clock moved on, but evaluate at t=4
        assert h.mean(until=4.0) == pytest.approx(2.0)

    def test_add_is_relative_set(self):
        clock = Clock()
        h = TimeWeightedHistogram("q", clock)
        h.add(2)
        h.add(3)
        h.add(-4)
        assert h.value == 1.0
        assert (h.vmin, h.vmax) == (0.0, 5.0)
        assert h.transitions == 3

    def test_bucket_seconds_by_bounds(self):
        clock = Clock()
        h = TimeWeightedHistogram("q", clock, bounds=(1, 4))
        clock.t = 2.0
        h.set(3)  # value 0 held [0, 2)
        clock.t = 3.0
        h.set(5)  # value 3 held [2, 3)
        clock.t = 3.5
        dist = dict(h.distribution())  # value 5 held [3, 3.5)
        assert dist == {
            "[-inf, 1)": pytest.approx(2.0),
            "[1, 4)": pytest.approx(1.0),
            "[4, +inf)": pytest.approx(0.5),
        }

    def test_to_dict_shape(self):
        clock = Clock()
        h = TimeWeightedHistogram("q", clock, bounds=(1,))
        clock.t = 1.0
        h.set(2)
        clock.t = 2.0
        d = h.to_dict()
        assert d["type"] == "histogram"
        assert d["mean"] == pytest.approx(1.0)
        assert (d["min"], d["max"], d["last"], d["transitions"]) == (0.0, 2.0, 2.0, 1)
        assert set(d["bucket_seconds"]) == {"[-inf, 1)", "[1, +inf)"}

    def test_mean_with_zero_span_returns_current_value(self):
        h = TimeWeightedHistogram("q", Clock(5.0))
        h.set(3)
        assert h.mean() == 3.0


class TestPercentiles:
    def test_duration_weighted_quantiles(self):
        clock = Clock()
        h = TimeWeightedHistogram("q", clock)
        h.set(1)            # value 1 holds [0, 90)
        clock.t = 90.0
        h.set(10)           # value 10 holds [90, 96)
        clock.t = 96.0
        h.set(40)           # value 40 holds [96, 100)
        clock.t = 100.0
        pct = h.percentiles()
        # 90% of the window sat at 1, 6% at 10, 4% at 40.
        assert pct == {"p50": 1.0, "p95": 10.0, "p99": 40.0}

    def test_spike_does_not_move_p50(self):
        """A microsecond blip must not drag the median the way an
        arithmetic quantile of transition values would."""
        clock = Clock()
        h = TimeWeightedHistogram("q", clock)
        h.set(3)
        clock.t = 50.0
        h.set(1000)         # blip: holds for 1e-6 s
        clock.t = 50.000001
        h.set(3)
        clock.t = 100.0
        pct = h.percentiles()
        assert pct["p50"] == 3.0
        assert pct["p99"] == 3.0

    def test_custom_percentile_list_and_keys(self):
        clock = Clock()
        h = TimeWeightedHistogram("q", clock)
        h.set(2)
        clock.t = 10.0
        # The signal only ever *held* 2 (the initial 0 lasted no time),
        # so every duration-weighted quantile — even p0 — is 2.
        assert h.percentiles(ps=(0.0, 100.0)) == {"p0": 2.0, "p100": 2.0}

    def test_no_elapsed_time_returns_current_value(self):
        h = TimeWeightedHistogram("q", Clock(3.0))
        h.set(7)
        assert h.percentiles() == {"p50": 7.0, "p95": 7.0, "p99": 7.0}

    def test_exact_boundary_is_inclusive(self):
        clock = Clock()
        h = TimeWeightedHistogram("q", clock)
        h.set(1)            # [0, 50): exactly half the window
        clock.t = 50.0
        h.set(2)            # [50, 100): the other half
        clock.t = 100.0
        # p50 lands exactly on the cumulative edge of value 1.
        assert h.percentiles(ps=(50.0,))["p50"] == 1.0

    def test_to_dict_includes_percentiles(self):
        clock = Clock()
        h = TimeWeightedHistogram("q", clock)
        h.set(4)
        clock.t = 8.0
        d = h.to_dict()
        assert d["p50"] == 4.0 and d["p95"] == 4.0 and d["p99"] == 4.0


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry(Clock())
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h") is reg.histogram("h")

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry(Clock())
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")
        with pytest.raises(TypeError):
            reg.histogram("x")

    def test_names_sorted_and_membership(self):
        reg = MetricsRegistry(Clock())
        reg.counter("b")
        reg.counter("a")
        assert reg.names() == ["a", "b"]
        assert "a" in reg and "zzz" not in reg
        assert len(reg) == 2

    def test_to_dict_covers_every_kind(self):
        clock = Clock()
        reg = MetricsRegistry(clock)
        reg.counter("c").add(2)
        reg.gauge("g").set(1)
        reg.histogram("h").set(4)
        clock.t = 2.0
        d = reg.to_dict()
        assert d["c"]["type"] == "counter"
        assert d["g"]["type"] == "gauge"
        assert d["h"]["type"] == "histogram"

    def test_rows_shape(self):
        clock = Clock()
        reg = MetricsRegistry(clock)
        reg.counter("c").add(3)
        reg.gauge("g").set(7)
        reg.histogram("h").set(1)
        clock.t = 1.0
        header, rows = reg.rows()
        assert header == ["metric", "type", "value", "mean", "min", "max",
                          "p50", "p95", "p99", "events"]
        assert [r[0] for r in rows] == ["c", "g", "h"]
        assert all(len(r) == len(header) for r in rows)
        by_name = {r[0]: dict(zip(header, r)) for r in rows}
        # Counters/gauges have no duration-weighted distribution — their
        # percentile cells stay blank; histograms carry real values.
        assert by_name["c"]["p50"] == by_name["g"]["p95"] == ""
        assert by_name["h"]["p50"] == 1.0


class TestNullRegistry:
    def test_every_lookup_is_shared_noop(self):
        c = NULL_REGISTRY.counter("a")
        assert c is NULL_REGISTRY.gauge("b") is NULL_REGISTRY.histogram("c")
        c.add(5)
        c.set(3)
        assert c.value == 0.0
        assert NULL_REGISTRY.to_dict() == {}
        assert len(NULL_REGISTRY) == 0
        assert not NULL_REGISTRY.enabled

    def test_rows_header_matches_live_registry(self):
        live_header, _ = MetricsRegistry(Clock()).rows()
        null_header, null_rows = NULL_REGISTRY.rows()
        assert null_header == live_header
        assert null_rows == []
