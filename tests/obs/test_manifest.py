"""Tests for run manifests: config hashing, git revision, round-trips."""

import json
import re

from repro.obs.manifest import RunManifest, build_manifest, config_hash, git_revision
from repro.obs.observer import Observer


class TestConfigHash:
    def test_stable_across_key_order(self):
        assert config_hash({"a": 1, "b": 2}) == config_hash({"b": 2, "a": 1})

    def test_sensitive_to_values(self):
        assert config_hash({"size": "1GB"}) != config_hash({"size": "2GB"})

    def test_sixteen_hex_chars(self):
        assert re.fullmatch(r"[0-9a-f]{16}", config_hash({"seed": 2011}))

    def test_handles_non_json_values(self):
        # Paths, tuples-as-values, etc. go through default=str.
        from pathlib import Path

        assert config_hash({"out": Path("/tmp/x")})


class TestGitRevision:
    def test_returns_hex_rev_in_this_checkout(self):
        rev = git_revision()
        assert rev is None or re.fullmatch(r"[0-9a-f]{40}", rev)


class TestRunManifest:
    def test_write_round_trips(self, tmp_path):
        m = RunManifest(
            experiment="fig6",
            config={"size": "1GB"},
            config_hash=config_hash({"size": "1GB"}),
            seed=2011,
            wall_seconds=1.5,
        )
        path = m.write(tmp_path / "run.manifest.json")
        data = json.loads(path.read_text())
        assert data["experiment"] == "fig6"
        assert data["seed"] == 2011
        assert data["config_hash"] == config_hash({"size": "1GB"})
        assert data["version"]  # package version is stamped

    def test_build_manifest_collects_event_counts(self):
        obs = Observer(clock=lambda: 0.0)
        obs.tracer.instant("fault", "crash")
        m = build_manifest(
            experiment="fault",
            config={"rate": 40.0},
            seed=7,
            observers=[("hadoop", obs)],
            wall_seconds=0.1,
            sim_elapsed={"hadoop": 94.9},
        )
        assert m.config_hash == config_hash({"rate": 40.0})
        assert m.event_counts["hadoop"]["instants"] == 1
        assert m.sim_elapsed == {"hadoop": 94.9}
        assert m.created_at  # timestamped
