"""Observability must be free: traced and untraced runs agree bit-for-bit.

The observer never schedules simulator events and never consumes
randomness, so ``observe=True`` may not move a single simulated
timestamp.  These tests pin that: the headline Figure-6 numbers are
*exactly* equal (``==`` on floats, no tolerance) with tracing on and
off, and the untraced numbers match the values the seed produced before
the observability subsystem existed.
"""

import pytest

from repro.hadoop import HadoopConfig, JobSpec, WORDCOUNT_PROFILE
from repro.hadoop.simulation import HadoopSimulation
from repro.mrmpi import MrMpiConfig
from repro.mrmpi.simulator import MrMpiSimulation
from repro.simnet.kernel import Simulator
from repro.util.units import GiB

# Figure-6 1 GB WordCount makespans of the pre-observability seed.
HADOOP_1GB = 45.882213377859564
MPID_1GB = 7.795975713962058


def _spec() -> JobSpec:
    return JobSpec(
        name="wordcount-1g",
        input_bytes=GiB,
        profile=WORDCOUNT_PROFILE,
        num_reduce_tasks=1,
    )


def _hadoop(observe: bool) -> float:
    sim = HadoopSimulation(
        spec=_spec(),
        config=HadoopConfig(map_slots=7, reduce_slots=7),
        seed=2011,
        observe=observe,
    )
    return sim.run().elapsed


def _mpid(observe: bool) -> float:
    sim = MrMpiSimulation(
        spec=_spec(),
        config=MrMpiConfig(num_mappers=49, num_reducers=1),
        observe=observe,
    )
    return sim.run().elapsed


class TestZeroCostWhenDisabled:
    def test_simulator_defaults_to_null_observer(self):
        sim = Simulator()
        assert sim.obs.enabled is False
        assert sim.obs.tracer.begin("c", "s") == 0

    def test_hadoop_bit_for_bit(self):
        off, on = _hadoop(observe=False), _hadoop(observe=True)
        assert off == on  # exact float equality, not approx
        assert off == HADOOP_1GB

    def test_mpid_bit_for_bit(self):
        off, on = _mpid(observe=False), _mpid(observe=True)
        assert off == on
        assert off == MPID_1GB

    def test_untraced_run_records_nothing(self):
        sim = HadoopSimulation(
            spec=_spec(),
            config=HadoopConfig(map_slots=7, reduce_slots=7),
            seed=2011,
        )
        sim.run()
        assert len(sim.sim.obs.tracer) == 0
        assert len(sim.sim.obs.metrics) == 0

    def test_traced_run_records_every_layer(self):
        sim = HadoopSimulation(
            spec=_spec(),
            config=HadoopConfig(map_slots=7, reduce_slots=7),
            seed=2011,
            observe=True,
        )
        sim.run()
        obs = sim.obs
        assert {"kernel", "net", "hadoop.job", "hadoop.map", "hadoop.reduce",
                "transport.jetty"} <= obs.tracer.categories()
        assert obs.tracer.open_spans() == []  # everything closed at job end
        assert obs.metrics.counter("hadoop.maps_finished").value == pytest.approx(16)
