"""Tests for the Chrome/Perfetto trace_event exporter and validator."""

import json

import pytest

from repro.obs.manifest import RunManifest
from repro.obs.observer import Observer
from repro.obs.perfetto import (
    categories_in,
    trace_dict,
    trace_events,
    validate_trace,
    write_trace,
)


class Clock:
    def __init__(self, t: float = 0.0):
        self.t = t

    def __call__(self) -> float:
        return self.t


@pytest.fixture
def observed():
    """An observer with one closed span, one open, an instant, a gauge."""
    clock = Clock()
    obs = Observer(clock=clock)
    done = obs.tracer.begin("net", "xfer", track="link0", nbytes=64)
    clock.t = 2.0
    obs.tracer.end(done)
    obs.tracer.begin("hadoop.map", "map0", track="attempt0")  # left open
    clock.t = 3.0
    obs.tracer.instant("fault", "crash", track="faults")
    obs.metrics.gauge("net.flows").set(2)
    return obs


class TestTraceEvents:
    def test_process_metadata_first(self, observed):
        events = trace_events(observed, pid=7, pid_name="hadoop")
        assert events[0] == {
            "ph": "M",
            "name": "process_name",
            "pid": 7,
            "tid": 0,
            "args": {"name": "hadoop"},
        }
        assert all(ev["pid"] == 7 for ev in events)

    def test_thread_metadata_per_track(self, observed):
        events = trace_events(observed)
        names = {
            ev["tid"]: ev["args"]["name"]
            for ev in events
            if ev["ph"] == "M" and ev["name"] == "thread_name"
        }
        assert set(names.values()) == {"link0", "attempt0", "faults"}

    def test_span_timestamps_in_microseconds(self, observed):
        events = trace_events(observed)
        xfer = next(ev for ev in events if ev["ph"] == "X" and ev["name"] == "xfer")
        assert (xfer["ts"], xfer["dur"]) == (0.0, 2.0e6)
        assert xfer["args"]["nbytes"] == 64

    def test_open_span_closed_at_final_time_and_flagged(self, observed):
        events = trace_events(observed)
        map0 = next(ev for ev in events if ev["name"] == "map0")
        # Opened at t=2, trace ends at t=3 (the instant).
        assert map0["dur"] == pytest.approx(1.0e6)
        assert map0["args"]["unfinished"] is True

    def test_instant_and_counter_events(self, observed):
        events = trace_events(observed)
        inst = next(ev for ev in events if ev["ph"] == "i")
        assert (inst["name"], inst["s"]) == ("crash", "t")
        ctr = next(ev for ev in events if ev["ph"] == "C")
        assert (ctr["name"], ctr["args"]) == ("net.flows", {"flows": 2.0})

    def test_deterministic(self, observed):
        assert trace_events(observed) == trace_events(observed)


class TestTraceDict:
    def test_single_observer_shorthand(self, observed):
        d = trace_dict(observed)
        assert d["displayTimeUnit"] == "ms"
        assert "otherData" not in d

    def test_multiple_observers_get_distinct_pids(self, observed):
        d = trace_dict([("hadoop", observed), ("mpid", observed)])
        assert {ev["pid"] for ev in d["traceEvents"]} == {1, 2}

    def test_manifest_object_is_serialized_into_other_data(self, observed):
        manifest = RunManifest(experiment="fig6", config={"size": "1GB"})
        d = trace_dict(observed, manifest=manifest)
        assert d["otherData"]["experiment"] == "fig6"
        json.dumps(d)  # the whole dict must be JSON-serializable


class TestValidateTrace:
    def test_round_trip_through_file(self, observed, tmp_path):
        path = write_trace(observed, tmp_path / "trace.json")
        events = validate_trace(path)
        assert categories_in(events) >= {"net", "hadoop.map", "fault"}

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError, match="no traceEvents"):
            validate_trace({"traceEvents": []})

    def test_unknown_phase_rejected(self):
        with pytest.raises(ValueError, match="unsupported phase"):
            validate_trace({"traceEvents": [{"ph": "Z"}]})

    def test_missing_key_rejected(self):
        ev = {"ph": "X", "name": "s", "cat": "c", "ts": 0, "pid": 1, "tid": 1}
        with pytest.raises(ValueError, match="missing 'dur'"):
            validate_trace({"traceEvents": [ev]})

    def test_negative_duration_rejected(self):
        ev = {"ph": "X", "name": "s", "cat": "c", "ts": 0, "dur": -1,
              "pid": 1, "tid": 1}
        with pytest.raises(ValueError, match="negative duration"):
            validate_trace({"traceEvents": [ev]})


class TestSimulatedTraceDeterminism:
    def test_same_seed_same_trace(self):
        from repro.hadoop import HadoopConfig, JobSpec, WORDCOUNT_PROFILE
        from repro.hadoop.simulation import HadoopSimulation
        from repro.util.units import MiB

        def trace():
            sim = HadoopSimulation(
                spec=JobSpec(
                    name="wc",
                    input_bytes=256 * MiB,
                    profile=WORDCOUNT_PROFILE,
                    num_reduce_tasks=1,
                ),
                config=HadoopConfig(map_slots=4, reduce_slots=4),
                seed=7,
                observe=True,
            )
            sim.run()
            return trace_events(sim.obs)

        assert trace() == trace()
