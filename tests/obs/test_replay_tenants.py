"""Replay frames from multi-tenant trace stores.

Satellite of the fleet-observability PR: the replay fold must carry
per-tenant occupancy (conserving tenant.job busy-seconds exactly),
surface preempt/shed instants as frame markers, and a store replayed
twice from the same seed must fold byte-identically.
"""

import json

import pytest

from repro.obs.replay import replay_store
from repro.obs.store import TraceStoreWriter, load_tracer


def _write_store(path, seed=2011, load=3.0, horizon=80.0):
    """A small arrival-driven run, overloaded enough to shed."""
    from repro.cluster import (
        MultiTenantEngine,
        QueueConfig,
        SchedulerConfig,
        TenantSpec,
    )
    from repro.hadoop import HadoopConfig

    tenants = [
        TenantSpec(
            name="batch",
            rate=0.05 * load,
            profile="poisson",
            workloads=("webdataScan",),
            min_input_bytes=32 * 2**20,
            max_input_bytes=64 * 2**20,
        ),
        TenantSpec(
            name="interactive",
            rate=0.08 * load,
            profile="poisson",
            workloads=("webdataScan",),
            min_input_bytes=16 * 2**20,
            max_input_bytes=32 * 2**20,
        ),
    ]
    queues = [
        QueueConfig(name="batch", capacity=0.5, max_queued=2, max_running=1),
        QueueConfig(name="interactive", capacity=0.5, max_queued=2,
                    max_running=1),
    ]
    engine = MultiTenantEngine(
        tenants,
        scheduler=SchedulerConfig(policy="fair"),
        queues=queues,
        hadoop_config=HadoopConfig(map_slots=2, reduce_slots=2),
        seed=seed,
        horizon=horizon,
        observe=True,
    )
    engine.setup()
    with TraceStoreWriter(path, system="tenants-fair") as writer:
        writer.attach(engine.sim.obs)
        report = engine.run()
        writer.summary = report
    return report


class TestTenantFrames:
    @pytest.fixture(scope="class")
    def store(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("stores") / "tenants.jsonl"
        report = _write_store(path)
        return path, report

    def test_frames_carry_per_tenant_occupancy(self, store):
        path, _report = store
        r = replay_store(path, buckets=40)
        seen = set()
        for frame in r.frames:
            seen.update(frame.tenants)
        assert seen, "tenant.job spans must fold into frame occupancy"
        assert seen <= {"batch", "interactive"}

    def test_occupancy_conserves_job_busy_seconds(self, store):
        path, _report = store
        r = replay_store(path, buckets=40)
        dt = r.t_end / len(r.frames)
        folded = sum(
            occ * dt for frame in r.frames for occ in frame.tenants.values()
        )
        tracer = load_tracer(path)
        busy = sum(
            min(s.t1, r.t_end) - s.t0
            for s in tracer.spans
            if s.category == "tenant.job" and s.t1 is not None
        )
        assert folded == pytest.approx(busy, rel=1e-6)

    def test_preempt_and_shed_instants_become_markers(self, store):
        path, report = store
        assert report["shed"] > 0, "scenario must overload the queues"
        r = replay_store(path, buckets=40)
        cats = {
            m["cat"] for frame in r.frames for m in frame.markers
        }
        assert "tenant.shed" in cats
        tracer = load_tracer(path)
        tenant_instants = [
            i for i in tracer.instants if i.category.startswith("tenant.")
        ]
        assert r.total_markers == len(tenant_instants)

    def test_same_seed_folds_byte_identically(self, store, tmp_path):
        path, _report = store
        other = tmp_path / "again.jsonl"
        _write_store(other)
        a = replay_store(path, buckets=40).to_dict()
        b = replay_store(other, buckets=40).to_dict()
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_frame_dicts_serialize_tenants(self, store):
        path, _report = store
        frame = replay_store(path, buckets=40).frames[0].to_dict()
        assert "tenants" in frame
