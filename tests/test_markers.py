"""The ``slow`` marker contract.

Tier-1 CI runs ``pytest`` with the default addopts (``-m 'not slow'``);
the slow suite is opted into explicitly with ``-m slow``.  Both halves
of that contract live in ``pyproject.toml`` — these tests pin them so a
config refactor can't silently start running (or losing) the slow
tests.
"""


def _ini_list(pytestconfig, name: str) -> list[str]:
    value = pytestconfig.getini(name)
    return list(value) if isinstance(value, (list, tuple)) else str(value).split()


def test_slow_marker_is_registered(pytestconfig):
    names = [m.split(":", 1)[0].strip() for m in pytestconfig.getini("markers")]
    assert "slow" in names, "the slow marker must stay registered in pyproject.toml"


def test_default_run_excludes_slow(pytestconfig):
    addopts = " ".join(_ini_list(pytestconfig, "addopts"))
    assert "not slow" in addopts, (
        "tier-1 default addopts must deselect slow tests (-m 'not slow')"
    )
