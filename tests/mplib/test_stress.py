"""Randomized stress tests of the message-passing runtime.

Hypothesis drives random traffic matrices through real rank-threads:
every message sent must arrive exactly once, per-pair order preserved,
regardless of interleaving.
"""

from collections import defaultdict

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.mplib import ANY_SOURCE, Runtime

# A traffic plan: for each sender rank, the list of (dest, payload) sends.
plan_strategy = st.lists(  # indexed by sender
    st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 10_000)),
        max_size=12,
    ),
    min_size=4,
    max_size=4,
)


class TestRandomTraffic:
    @settings(
        max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(plan=plan_strategy)
    def test_every_message_arrives_exactly_once_in_order(self, plan):
        expected_by_pair = defaultdict(list)
        for src, sends in enumerate(plan):
            for dst, payload in sends:
                expected_by_pair[(src, dst)].append(payload)
        inbound = {
            dst: sum(1 for sends in plan for d, _ in sends if d == dst)
            for dst in range(4)
        }

        def main(comm):
            for dst, payload in plan[comm.rank]:
                comm.send((comm.rank, payload), dest=dst, tag=0)
            got = []
            for _ in range(inbound[comm.rank]):
                got.append(comm.recv(source=ANY_SOURCE, tag=0, status=True))
            return got

        results = Runtime(4, progress_timeout=10.0).run(main)
        for dst, received in enumerate(results):
            by_pair = defaultdict(list)
            for (src_tagged, payload), status in received:
                assert status.source == src_tagged
                by_pair[(status.source, dst)].append(payload)
            for pair, payloads in by_pair.items():
                assert payloads == expected_by_pair[pair]  # order per pair
            total_expected = sum(
                len(v) for (s, d), v in expected_by_pair.items() if d == dst
            )
            assert len(received) == total_expected

    @settings(
        max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(
        values=st.lists(st.integers(-100, 100), min_size=4, max_size=4),
        reps=st.integers(1, 5),
    )
    def test_repeated_collectives_consistent(self, values, reps):
        def main(comm):
            out = []
            for _ in range(reps):
                out.append(comm.allreduce(values[comm.rank]))
                out.append(comm.allgather(values[comm.rank]))
            return out

        results = Runtime(4, progress_timeout=10.0).run(main)
        expected_sum = sum(values)
        for rank_result in results:
            for i, item in enumerate(rank_result):
                if i % 2 == 0:
                    assert item == expected_sum
                else:
                    assert item == values
