"""Collective operation tests across several world sizes."""

import operator

import pytest

from repro.mplib import Runtime

SIZES = [1, 2, 3, 4, 5, 8]


def run(world_size, main):
    return Runtime(world_size, progress_timeout=5.0).run(main)


class TestBarrier:
    @pytest.mark.parametrize("p", SIZES)
    def test_barrier_completes(self, p):
        def main(comm):
            comm.barrier()
            return comm.rank

        assert run(p, main) == list(range(p))

    def test_barrier_actually_synchronizes(self):
        import time

        def main(comm):
            if comm.rank == 0:
                time.sleep(0.3)
            comm.barrier()
            return time.monotonic()

        times = run(4, main)
        assert max(times) - min(times) < 0.25  # all released together

    def test_back_to_back_barriers(self):
        def main(comm):
            for _ in range(10):
                comm.barrier()
            return "done"

        assert run(4, main) == ["done"] * 4


class TestBcast:
    @pytest.mark.parametrize("p", SIZES)
    def test_bcast_from_zero(self, p):
        def main(comm):
            return comm.bcast({"data": 7} if comm.rank == 0 else None, root=0)

        assert run(p, main) == [{"data": 7}] * p

    @pytest.mark.parametrize("root", [0, 1, 2])
    def test_bcast_nonzero_root(self, root):
        def main(comm):
            return comm.bcast(comm.rank * 100 if comm.rank == root else None, root)

        assert run(3, main) == [root * 100] * 3


class TestGatherScatter:
    @pytest.mark.parametrize("p", SIZES)
    def test_gather(self, p):
        def main(comm):
            return comm.gather(comm.rank**2, root=0)

        results = run(p, main)
        assert results[0] == [r**2 for r in range(p)]
        assert all(r is None for r in results[1:])

    def test_gather_nonzero_root(self):
        def main(comm):
            return comm.gather(chr(ord("a") + comm.rank), root=2)

        assert run(4, main)[2] == ["a", "b", "c", "d"]

    @pytest.mark.parametrize("p", SIZES)
    def test_scatter(self, p):
        def main(comm):
            data = [f"item{i}" for i in range(comm.size)] if comm.rank == 0 else None
            return comm.scatter(data, root=0)

        assert run(p, main) == [f"item{i}" for i in range(p)]

    def test_scatter_wrong_length(self):
        def main(comm):
            if comm.rank == 0:
                with pytest.raises(ValueError, match="exactly"):
                    comm.scatter([1, 2, 3], root=0)
                with pytest.raises(ValueError, match="exactly"):
                    comm.scatter(None, root=0)
            return "ok"

        assert run(1, main) == ["ok"]

    @pytest.mark.parametrize("p", SIZES)
    def test_allgather(self, p):
        def main(comm):
            return comm.allgather(comm.rank)

        assert run(p, main) == [list(range(p))] * p


class TestReduce:
    @pytest.mark.parametrize("p", SIZES)
    def test_sum_reduce(self, p):
        def main(comm):
            return comm.reduce(comm.rank + 1, root=0)

        results = run(p, main)
        assert results[0] == p * (p + 1) // 2

    def test_custom_op(self):
        def main(comm):
            return comm.reduce(comm.rank + 1, op=operator.mul, root=0)

        assert run(4, main)[0] == 24

    def test_noncommutative_associative_op_rank_order(self):
        """List concatenation: result must be in rank order for root=0."""

        def main(comm):
            return comm.reduce([comm.rank], op=operator.add, root=0)

        assert run(5, main)[0] == [0, 1, 2, 3, 4]

    @pytest.mark.parametrize("p", SIZES)
    def test_allreduce(self, p):
        def main(comm):
            return comm.allreduce(comm.rank)

        assert run(p, main) == [sum(range(p))] * p

    def test_reduce_max(self):
        def main(comm):
            return comm.reduce(comm.rank * 3, op=max, root=0)

        assert run(4, main)[0] == 9


class TestAlltoall:
    @pytest.mark.parametrize("p", SIZES)
    def test_alltoall_transpose(self, p):
        """Row i sends slot j to row j: the classic matrix transpose."""

        def main(comm):
            row = [(comm.rank, j) for j in range(comm.size)]
            return comm.alltoall(row)

        results = run(p, main)
        for j, got in enumerate(results):
            assert got == [(i, j) for i in range(p)]

    def test_alltoall_wrong_length(self):
        def main(comm):
            with pytest.raises(ValueError):
                comm.alltoall([1, 2, 3])
            comm.barrier()
            return "ok"

        assert run(2, main) == ["ok", "ok"]


class TestMixedTraffic:
    def test_collectives_do_not_eat_user_messages(self):
        """A user message queued before a collective survives it."""

        def main(comm):
            if comm.rank == 0:
                comm.send("user-data", dest=1, tag=11)
            comm.barrier()
            comm.bcast("payload", root=0)
            if comm.rank == 1:
                return comm.recv(source=0, tag=11)
            return None

        assert run(3, main)[1] == "user-data"

    def test_interleaved_collectives_and_p2p(self):
        def main(comm):
            total = comm.allreduce(1)
            if comm.rank == 0:
                for peer in range(1, comm.size):
                    comm.send(total * peer, dest=peer, tag=0)
                return total
            return comm.recv(source=0, tag=0)

        assert run(4, main) == [4, 4, 8, 12]
