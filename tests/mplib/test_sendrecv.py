"""MPI_Sendrecv tests."""

import pytest

from repro.mplib import Runtime, TagError


def run(world_size, main, timeout=5.0):
    return Runtime(world_size, progress_timeout=timeout).run(main)


class TestSendrecv:
    def test_pairwise_exchange(self):
        def main(comm):
            partner = comm.rank ^ 1
            return comm.sendrecv(f"from-{comm.rank}", dest=partner, source=partner)

        assert run(4, main) == ["from-1", "from-0", "from-3", "from-2"]

    def test_ring_shift(self):
        def main(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            return comm.sendrecv(comm.rank, dest=right, source=left)

        assert run(5, main) == [4, 0, 1, 2, 3]

    def test_tags_respected(self):
        def main(comm):
            partner = comm.rank ^ 1
            # Two concurrent exchanges on distinct tags.
            a = comm.sendrecv(
                ("a", comm.rank), dest=partner, source=partner, sendtag=1, recvtag=1
            )
            b = comm.sendrecv(
                ("b", comm.rank), dest=partner, source=partner, sendtag=2, recvtag=2
            )
            return (a, b)

        results = run(2, main)
        assert results[0] == (("a", 1), ("b", 1))
        assert results[1] == (("a", 0), ("b", 0))

    def test_negative_sendtag_rejected(self):
        def main(comm):
            with pytest.raises(TagError):
                comm.sendrecv("x", dest=0, sendtag=-1)
            return "ok"  # tag validated before anything was posted

        assert run(1, main) == ["ok"]
