"""Sub-communicator (Comm.split) and request-helper tests."""

import pytest

from repro.mplib import ANY_SOURCE, RankError, Runtime, waitall, waitany


def run(world_size, main, timeout=5.0):
    return Runtime(world_size, progress_timeout=timeout).run(main)


class TestSplit:
    def test_even_odd_split(self):
        def main(comm):
            sub = comm.split(color=comm.rank % 2)
            return (sub.rank, sub.size)

        results = run(6, main)
        # Three even ranks {0,2,4} -> sub ranks 0,1,2; same for odd.
        assert results == [(0, 3), (0, 3), (1, 3), (1, 3), (2, 3), (2, 3)]

    def test_group_world_ranks(self):
        def main(comm):
            sub = comm.split(color=0 if comm.rank < 2 else 1)
            return sub.group_world_ranks

        results = run(4, main)
        assert results[0] == [0, 1]
        assert results[3] == [2, 3]

    def test_key_reorders_ranks(self):
        def main(comm):
            # Reverse rank order inside the single group.
            sub = comm.split(color=0, key=-comm.rank)
            return sub.rank

        assert run(3, main) == [2, 1, 0]

    def test_undefined_color_opts_out(self):
        def main(comm):
            sub = comm.split(color=None if comm.rank == 0 else 7)
            if sub is None:
                return "out"
            return sub.size

        results = run(3, main)
        assert results == ["out", 2, 2]

    def test_p2p_within_subcomm_uses_local_ranks(self):
        def main(comm):
            sub = comm.split(color=comm.rank % 2)
            if sub.rank == 0:
                sub.send(f"from-{comm.rank}", dest=1, tag=3)
                return None
            if sub.rank == 1:
                return sub.recv(source=0, tag=3)
            return None

        results = run(4, main)
        assert results[2] == "from-0"  # world rank 2 = even-group rank 1
        assert results[3] == "from-1"

    def test_isolation_from_parent_traffic(self):
        """Same tag on parent and sub-communicator must not cross."""

        def main(comm):
            sub = comm.split(color=0)
            if comm.rank == 0:
                comm.send("parent-msg", dest=1, tag=5)
                sub.send("sub-msg", dest=1, tag=5)
                return None
            if comm.rank == 1:
                from_sub = sub.recv(source=0, tag=5)
                from_parent = comm.recv(source=0, tag=5)
                return (from_sub, from_parent)
            return None

        results = run(2, main)
        assert results[1] == ("sub-msg", "parent-msg")

    def test_collectives_on_subcomm(self):
        def main(comm):
            sub = comm.split(color=comm.rank % 2)
            return sub.allreduce(comm.rank)

        results = run(6, main)
        assert results[0] == results[2] == results[4] == 0 + 2 + 4
        assert results[1] == results[3] == results[5] == 1 + 3 + 5

    def test_nested_split(self):
        def main(comm):
            half = comm.split(color=comm.rank // 2)  # pairs
            solo = half.split(color=half.rank)  # singletons
            return (half.size, solo.size, solo.allreduce(1))

        assert run(4, main) == [(2, 1, 1)] * 4

    def test_wildcard_recv_scoped_to_subcomm(self):
        def main(comm):
            sub = comm.split(color=comm.rank % 2)
            if comm.rank == 0:
                comm.send("world", dest=2, tag=0)  # parent ctx
                sub.send("group", dest=1, tag=0)  # to world rank 2
                return None
            if comm.rank == 2:
                got_sub = sub.recv(source=ANY_SOURCE, tag=0)
                got_world = comm.recv(source=ANY_SOURCE, tag=0)
                return (got_sub, got_world)
            return None

        results = run(4, main)
        assert results[2] == ("group", "world")

    def test_subcomm_rank_validation(self):
        def main(comm):
            sub = comm.split(color=comm.rank % 2)
            with pytest.raises(RankError):
                sub.send("x", dest=sub.size)  # out of the group
            comm.barrier()
            return "ok"

        assert run(4, main) == ["ok"] * 4


class TestWaitHelpers:
    def test_waitall(self):
        def main(comm):
            if comm.rank == 0:
                for i in range(3):
                    comm.send(i * 10, dest=1, tag=i)
                return None
            reqs = [comm.irecv(source=0, tag=i) for i in range(3)]
            return waitall(reqs)

        assert run(2, main)[1] == [0, 10, 20]

    def test_waitany_returns_first(self):
        import time

        def main(comm):
            if comm.rank == 0:
                comm.send("fast", dest=1, tag=7)
                time.sleep(0.2)
                comm.send("slow", dest=1, tag=8)
                return None
            slow = comm.irecv(source=0, tag=8)
            fast = comm.irecv(source=0, tag=7)
            idx, value = waitany([slow, fast])
            slow.wait()
            return (idx, value)

        assert run(2, main)[1] == (1, "fast")

    def test_waitany_empty_rejected(self):
        with pytest.raises(ValueError):
            waitany([])
