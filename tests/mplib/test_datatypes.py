"""Pack/unpack (MPI_Pack analogue) tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mplib.datatypes import Packer, Unpacker, pack_records, unpack_records

scalar = st.one_of(
    st.integers(),
    st.floats(allow_nan=False),
    st.text(max_size=32),
    st.binary(max_size=32),
    st.none(),
)


class TestPacker:
    def test_cursor_tracks_size(self):
        p = Packer()
        assert p.size == 0
        n = p.pack("hello")
        assert p.size == n > 0

    def test_pack_many(self):
        p = Packer()
        total = p.pack_many(["a", "b", "c"])
        assert total == p.size

    def test_getbuffer_concatenates(self):
        p = Packer()
        p.pack(1)
        p.pack(2)
        buf = p.getbuffer()
        u = Unpacker(buf)
        assert u.unpack() == 1
        assert u.unpack() == 2

    def test_clear(self):
        p = Packer()
        p.pack("x")
        p.clear()
        assert p.size == 0
        assert p.getbuffer() == b""

    def test_getbuffer_idempotent(self):
        p = Packer()
        p.pack("x")
        assert p.getbuffer() == p.getbuffer()


class TestUnpacker:
    def test_position_advances(self):
        p = Packer()
        p.pack("ab")
        p.pack("cd")
        u = Unpacker(p.getbuffer())
        assert u.position == 0
        u.unpack()
        assert 0 < u.position < len(p.getbuffer())

    def test_iteration(self):
        p = Packer()
        p.pack_many([10, 20, 30])
        assert list(Unpacker(p.getbuffer())) == [10, 20, 30]

    def test_unpack_past_end(self):
        u = Unpacker(b"")
        with pytest.raises(EOFError):
            u.unpack()

    @given(st.lists(scalar, max_size=20))
    def test_roundtrip(self, values):
        p = Packer()
        p.pack_many(values)
        assert list(Unpacker(p.getbuffer())) == values


class TestRecordHelpers:
    @given(st.lists(st.tuples(scalar, scalar), max_size=16))
    def test_record_roundtrip(self, records):
        buf = pack_records(records)
        assert list(unpack_records(buf)) == records

    def test_dangling_key_detected(self):
        p = Packer()
        p.pack("key-without-value")
        with pytest.raises(ValueError, match="dangling key"):
            list(unpack_records(p.getbuffer()))
