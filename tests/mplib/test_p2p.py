"""Point-to-point semantics: blocking, wildcard, ordering, buffers, errors."""

import numpy as np
import pytest

from repro.mplib import (
    ANY_SOURCE,
    ANY_TAG,
    DeadlockError,
    RankError,
    Runtime,
    TagError,
    TruncationError,
)


def run(world_size, main, **kw):
    return Runtime(world_size, progress_timeout=kw.pop("timeout", 5.0)).run(main, **kw)


class TestBasicSendRecv:
    def test_two_rank_roundtrip(self):
        def main(comm):
            if comm.rank == 0:
                comm.send({"n": 42}, dest=1, tag=3)
                return comm.recv(source=1, tag=4)
            obj = comm.recv(source=0, tag=3)
            comm.send(obj["n"] + 1, dest=0, tag=4)
            return obj

        results = run(2, main)
        assert results == [43, {"n": 42}]

    def test_self_send(self):
        def main(comm):
            comm.send("me", dest=0, tag=1)
            return comm.recv(source=0, tag=1)

        assert run(1, main) == ["me"]

    def test_object_copy_semantics(self):
        """Receiver must see the object as it was at send time."""

        def main(comm):
            if comm.rank == 0:
                obj = [1, 2, 3]
                comm.send(obj, dest=1)
                obj.append(999)  # must not be visible at rank 1
                comm.send("done", dest=1, tag=9)
                return None
            first = comm.recv(source=0, tag=ANY_TAG)
            comm.recv(source=0, tag=9)
            return first

        assert run(2, main)[1] == [1, 2, 3]

    def test_status_reports_source_tag_count(self):
        def main(comm):
            if comm.rank == 0:
                comm.send(b"xxxx", dest=1, tag=17)
                return None
            obj, status = comm.recv(source=ANY_SOURCE, tag=ANY_TAG, status=True)
            return (obj, status.source, status.tag)

        assert run(2, main)[1] == (b"xxxx", 0, 17)


class TestOrdering:
    def test_non_overtaking_same_tag(self):
        def main(comm):
            if comm.rank == 0:
                for i in range(50):
                    comm.send(i, dest=1, tag=5)
                return None
            return [comm.recv(source=0, tag=5) for _ in range(50)]

        assert run(2, main)[1] == list(range(50))

    def test_tag_selective_receive(self):
        def main(comm):
            if comm.rank == 0:
                comm.send("low", dest=1, tag=1)
                comm.send("high", dest=1, tag=2)
                return None
            high = comm.recv(source=0, tag=2)
            low = comm.recv(source=0, tag=1)
            return (high, low)

        assert run(2, main)[1] == ("high", "low")

    def test_wildcard_source_gathers_all(self):
        def main(comm):
            if comm.rank == 0:
                got = sorted(comm.recv(source=ANY_SOURCE, tag=0) for _ in range(3))
                return got
            comm.send(comm.rank * 10, dest=0, tag=0)
            return None

        assert run(4, main)[0] == [10, 20, 30]


class TestSsend:
    def test_ssend_completes_after_match(self):
        import time

        def main(comm):
            if comm.rank == 0:
                t0 = time.monotonic()
                comm.ssend("sync", dest=1)
                return time.monotonic() - t0
            time.sleep(0.3)
            return comm.recv(source=0)

        results = run(2, main)
        assert results[0] >= 0.25  # blocked until the late receive
        assert results[1] == "sync"


class TestBufferOps:
    def test_send_recv_numpy(self):
        def main(comm):
            if comm.rank == 0:
                comm.Send(np.arange(10, dtype=np.int64), dest=1, tag=2)
                return None
            buf = np.zeros(10, dtype=np.int64)
            status = comm.Recv(buf, source=0, tag=2)
            return (buf.tolist(), status.count)

        out = run(2, main)[1]
        assert out == (list(range(10)), 10)

    def test_buffer_copy_on_send(self):
        def main(comm):
            if comm.rank == 0:
                arr = np.ones(4)
                comm.Send(arr, dest=1)
                arr[:] = -1
                comm.send("done", dest=1, tag=9)
                return None
            buf = np.zeros(4)
            comm.Recv(buf, source=0)
            comm.recv(source=0, tag=9)
            return buf.tolist()

        assert run(2, main)[1] == [1.0, 1.0, 1.0, 1.0]

    def test_truncation_error(self):
        def main(comm):
            if comm.rank == 0:
                comm.Send(np.arange(100), dest=1)
                return None
            buf = np.zeros(3)
            with pytest.raises(TruncationError):
                comm.Recv(buf, source=0)
            return "checked"

        assert run(2, main)[1] == "checked"

    def test_recv_into_larger_buffer_ok(self):
        def main(comm):
            if comm.rank == 0:
                comm.Send(np.array([7, 8]), dest=1)
                return None
            buf = np.zeros(5)
            st = comm.Recv(buf, source=0)
            return (buf[:2].tolist(), st.count)

        assert run(2, main)[1] == ([7.0, 8.0], 2)


class TestProbe:
    def test_probe_then_recv(self):
        def main(comm):
            if comm.rank == 0:
                comm.send(b"12345", dest=1, tag=3)
                return None
            st = comm.probe(source=ANY_SOURCE, tag=ANY_TAG)
            obj = comm.recv(source=st.source, tag=st.tag)
            return (st.source, st.tag, obj)

        assert run(2, main)[1] == (0, 3, b"12345")

    def test_iprobe_nonblocking(self):
        def main(comm):
            if comm.rank == 0:
                assert comm.iprobe(source=1) is None or True  # may race; just call
                comm.send("x", dest=1)
                return None
            # Wait until it is definitely there.
            st = comm.probe(source=0)
            assert comm.iprobe(source=0) is not None
            return comm.recv(source=0)

        assert run(2, main)[1] == "x"


class TestNonblocking:
    def test_irecv_isend(self):
        def main(comm):
            if comm.rank == 0:
                req = comm.isend([1, 2], dest=1, tag=8)
                req.wait()
                return None
            req = comm.irecv(source=0, tag=8)
            return req.wait()

        assert run(2, main)[1] == [1, 2]

    def test_posted_receives_match_in_post_order(self):
        def main(comm):
            if comm.rank == 0:
                comm.send("first", dest=1, tag=0)
                comm.send("second", dest=1, tag=0)
                return None
            r1 = comm.irecv(source=0, tag=0)
            r2 = comm.irecv(source=0, tag=0)
            return (r1.wait(), r2.wait())

        assert run(2, main)[1] == ("first", "second")

    def test_test_polls(self):
        def main(comm):
            if comm.rank == 0:
                comm.recv(source=1)  # handshake so rank 1 knows we're up
                comm.send("late", dest=1)
                return None
            req = comm.irecv(source=0)
            assert req.test() is False
            comm.send("go", dest=0)
            val = req.wait()
            assert req.test() is True
            return val

        assert run(2, main)[1] == "late"


class TestErrors:
    def test_negative_user_tag_rejected(self):
        def main(comm):
            with pytest.raises(TagError):
                comm.send("x", dest=0, tag=-3)
            return "ok"

        assert run(1, main) == ["ok"]

    def test_bad_dest_rank(self):
        def main(comm):
            with pytest.raises(RankError):
                comm.send("x", dest=5)
            return "ok"

        assert run(2, main) == ["ok", "ok"]

    def test_deadlock_detection(self):
        def main(comm):
            comm.recv(source=0, tag=1)  # nothing ever sent

        with pytest.raises(DeadlockError):
            Runtime(2, progress_timeout=0.3).run(main)

    def test_exception_on_one_rank_propagates(self):
        def main(comm):
            if comm.rank == 1:
                raise ValueError("rank 1 exploded")
            comm.recv(source=1)  # would deadlock without the abort

        with pytest.raises(ValueError, match="rank 1 exploded"):
            Runtime(2, progress_timeout=5.0).run(main)

    def test_world_size_validation(self):
        with pytest.raises(ValueError):
            Runtime(0)
        with pytest.raises(ValueError):
            Runtime(2, progress_timeout=0)
