"""Workload generator tests: determinism, distributions, splitting."""

from collections import Counter

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.workloads import (
    SortRecordGenerator,
    ZipfTextGenerator,
    generate_corpus,
    generate_sort_records,
    split_by_bytes,
    split_evenly,
)
from repro.workloads.textgen import _synth_word


class TestSynthWords:
    def test_distinct(self):
        words = [_synth_word(i) for i in range(5000)]
        assert len(set(words)) == 5000

    def test_nonempty_lowercase(self):
        for i in (0, 1, 100, 99999):
            w = _synth_word(i)
            assert w and w.islower() and w.isalpha()


class TestZipfText:
    def test_deterministic(self):
        a = ZipfTextGenerator(seed=3).lines(10)
        b = ZipfTextGenerator(seed=3).lines(10)
        assert a == b

    def test_different_seeds_differ(self):
        assert ZipfTextGenerator(seed=1).lines(5) != ZipfTextGenerator(seed=2).lines(5)

    def test_line_shape(self):
        gen = ZipfTextGenerator(words_per_line=7, seed=0)
        for line in gen.lines(20):
            assert len(line.split()) == 7

    def test_words_from_vocabulary(self):
        gen = ZipfTextGenerator(vocab_size=50, seed=0)
        vocab = set(gen.vocabulary)
        for line in gen.lines(30):
            assert set(line.split()) <= vocab

    def test_zipf_skew(self):
        """The most frequent word must dominate a uniform share."""
        gen = ZipfTextGenerator(vocab_size=1000, seed=0)
        counts = Counter(w for line in gen.lines(2000) for w in line.split())
        top = counts.most_common(1)[0][1]
        total = sum(counts.values())
        assert top / total > 5 / 1000  # >> uniform 1/1000

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfTextGenerator(vocab_size=0)
        with pytest.raises(ValueError):
            ZipfTextGenerator(words_per_line=0)
        with pytest.raises(ValueError):
            ZipfTextGenerator(zipf_s=0)
        with pytest.raises(ValueError):
            ZipfTextGenerator().lines(-1)

    def test_corpus_size_close_to_request(self):
        corpus = generate_corpus(20_000, seed=1)
        size = sum(len(line) + 1 for line in corpus)
        assert 0.5 * 20_000 <= size <= 1.5 * 20_000

    def test_corpus_minimum_one_line(self):
        assert len(generate_corpus(1)) == 1


class TestSortRecords:
    def test_record_layout(self):
        for k, v in generate_sort_records(10):
            assert len(k) == 10 and len(v) == 90

    def test_deterministic(self):
        assert generate_sort_records(5, seed=9) == generate_sort_records(5, seed=9)

    def test_keys_mostly_unique(self):
        keys = [k for k, _ in generate_sort_records(1000)]
        assert len(set(keys)) > 990

    def test_records_for_bytes_rounds_up(self):
        gen = SortRecordGenerator(seed=0)
        recs = list(gen.records_for_bytes(250))
        assert len(recs) == 3  # 100-byte records

    def test_validation(self):
        with pytest.raises(ValueError):
            SortRecordGenerator(key_bytes=0)
        with pytest.raises(ValueError):
            list(SortRecordGenerator().records(-1))
        with pytest.raises(ValueError):
            list(SortRecordGenerator().records_for_bytes(-1))


class TestSplits:
    @given(st.lists(st.integers(), max_size=50), st.integers(1, 8))
    def test_split_evenly_conserves(self, records, n):
        splits = split_evenly(records, n)
        assert len(splits) == n
        merged = []
        idx = [0] * n
        for i in range(len(records)):
            merged.append(splits[i % n][idx[i % n]])
            idx[i % n] += 1
        assert merged == records

    def test_split_evenly_validation(self):
        with pytest.raises(ValueError):
            split_evenly([1], 0)

    def test_split_by_bytes_respects_budget(self):
        recs = ["x" * 10] * 10
        splits = split_by_bytes(recs, 25)
        assert all(sum(len(r) for r in s) <= 25 for s in splits)
        assert [r for s in splits for r in s] == recs

    def test_split_by_bytes_oversized_record(self):
        splits = split_by_bytes(["tiny", "x" * 100, "small"], 20)
        assert ["x" * 100] in splits

    def test_split_by_bytes_validation(self):
        with pytest.raises(ValueError):
            split_by_bytes([], 0)

    def test_split_by_bytes_custom_sizer(self):
        recs = [(b"k", b"v" * 50), (b"k2", b"v" * 50)]
        splits = split_by_bytes(recs, 60, size_of=lambda r: len(r[0]) + len(r[1]))
        assert len(splits) == 2
