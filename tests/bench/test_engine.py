"""Unit tests for the engine bench harness (``repro.bench``).

Tiny knobs everywhere: these verify the harness *mechanics* — scenario
construction, equality checking, divergence plumbing, report shape —
not the headline numbers (that's ``python -m repro bench``).
"""

from __future__ import annotations

import json

import pytest

from repro.bench.engine import (
    BenchReport,
    _churn_script,
    _scalability_multi_tenant,
    _scalability_single_job,
    _star_network,
    _timer_storm,
    bench_kernel_cancel,
    bench_kernel_dispatch,
    bench_maxmin_churn,
    bench_maxmin_solver,
    bench_scalability,
)
from repro.simnet.engine import use_engine


class TestReport:
    def test_record_sets_divergence_on_identical_false(self):
        report = BenchReport()
        report.record("micro", "a", {"speedup": 2.0, "identical": True})
        assert not report.divergence
        report.record("macro", "b", {"speedup": 2.0, "identical": False})
        assert report.divergence
        assert report.to_dict()["macro"]["b"]["identical"] is False

    def test_entries_without_identity_flag_do_not_diverge(self):
        report = BenchReport()
        report.record("micro", "c", {"run_s": 0.1})
        assert not report.divergence

    def test_record_sets_divergence_on_nondeterministic(self):
        report = BenchReport()
        report.record(
            "macro", "scal", {"identical": True, "deterministic": True}
        )
        assert not report.divergence
        report.record(
            "macro", "scal2", {"identical": True, "deterministic": False}
        )
        assert report.divergence


class TestScenarios:
    def test_star_network_is_deterministic(self):
        _, a = _star_network(4, 20, 4, seed=7)
        _, b = _star_network(4, 20, 4, seed=7)
        assert {f.seq: f.rate for f in a._flows} == {
            f.seq: f.rate for f in b._flows
        }
        assert len(a._flows) == 20
        assert sum(1 for f in a._flows if f.rate_cap != float("inf")) == 5

    def test_churn_script_log_is_deterministic(self):
        sim_a, _, log_a = _churn_script(4, 40, 7, 5, seed=3)
        sim_b, _, log_b = _churn_script(4, 40, 7, 5, seed=3)
        sim_a.run()
        sim_b.run()
        assert log_a == log_b
        assert len(log_a) == 40  # every flow resolves, killed or done
        assert any(not ok for _, _, ok in log_a)  # kills really landed

    def test_timer_storm_cancels_exact_fraction(self):
        from repro.simnet.kernel import Simulator

        sim = Simulator()
        _timer_storm(sim, 200, 0.25, seed=5)
        assert sim.events_cancelled == 50
        # Bare timeouts carry no callbacks, so none of them count as
        # dispatched — only the cancel ledger moves in this storm.
        assert sim.events_dispatched == 0


class TestMicroBenches:
    def test_maxmin_solver_reports_identical(self):
        r = bench_maxmin_solver(flows=40, num_nodes=4, repeats=1, solves=2)
        assert r["identical"] is True
        assert r["speedup"] > 0
        assert r["flows"] == 40 and r["links"] == 8

    def test_maxmin_churn_reports_identical_and_counters(self):
        r = bench_maxmin_churn(flows=60, num_nodes=4, repeats=1)
        assert r["identical"] is True
        c = r["counters"]
        assert c["rate_recomputes"] > 0
        assert c["rate_recompute_flows"] >= c["rate_recomputes"]
        assert c["events_dispatched"] > 0
        assert c["events_cancelled"] > 0  # superseded completion timers

    def test_kernel_dispatch_heap_and_wheel_agree(self):
        r = bench_kernel_dispatch(timers=500, repeats=1)
        assert r["identical"] is True

    def test_kernel_cancel_counts_tombstones(self):
        r = bench_kernel_cancel(timers=400, cancel_fraction=0.5, repeats=1)
        assert r["identical"] is True
        assert r["events_cancelled"] == 200


@pytest.mark.slow
class TestScalabilityGolden:
    """Golden differential: the scalability macro's two workloads must
    export bit-for-bit identical results under both flow engines at the
    quick sweep size (~100 nodes).  The comparison here is independent
    of the macro's own self-check — raw export strings, compared in the
    test."""

    NODES = 100

    def test_single_job_exports_bit_for_bit(self):
        with use_engine("reference"):
            _, ref_export, ref_events, _ = _scalability_single_job(
                self.NODES, seed=2011, mib_per_worker=16
            )
        _, vec_export, vec_events, _ = _scalability_single_job(
            self.NODES, seed=2011, mib_per_worker=16
        )
        assert vec_export == ref_export
        assert ref_events > 0 and vec_events > 0

    def test_multi_tenant_exports_bit_for_bit(self):
        with use_engine("reference"):
            _, ref_export, _, _ = _scalability_multi_tenant(
                self.NODES, seed=2011, horizon=120.0
            )
        _, vec_export, _, _ = _scalability_multi_tenant(
            self.NODES, seed=2011, horizon=120.0
        )
        assert vec_export == ref_export

    def test_macro_reports_identical_and_deterministic(self):
        r = bench_scalability(
            node_counts=(self.NODES,), mib_per_worker=16, horizon=120.0
        )
        assert r["identical"] is True
        assert r["deterministic"] is True
        entry = r["per_nodes"][str(self.NODES)]
        for leg in ("single_job", "multi_tenant"):
            assert entry[leg]["identical"] is True
            assert entry[leg]["deterministic"] is True
            assert entry[leg]["events_vectorized"] > 0
            assert entry[leg]["events_reference"] > 0


@pytest.mark.slow
class TestCli:
    def test_quick_run_writes_report_and_exits_zero(self, tmp_path):
        from repro.bench.cli import main

        out = tmp_path / "BENCH_engine.json"
        rc = main(["--quick", "--sizes", "0.25", "--out", str(out)])
        assert rc == 0
        data = json.loads(out.read_text())
        assert data["divergence"] is False
        assert set(data["micro"]) == {
            "maxmin_solver",
            "maxmin_churn",
            "kernel_dispatch",
            "kernel_cancel",
        }
        assert set(data["macro"]) == {"fig6", "scalability", "network_faults"}
        assert data["macro"]["scalability"]["identical"] is True
        assert data["macro"]["scalability"]["deterministic"] is True
        assert data["manifest"]["experiment"] == "bench_engine"
