"""Tests for the bench history + regression gate."""

import json

import pytest

from repro.bench import history
from repro.bench.engine import BenchReport


def _report(fig6_speedup: float = 2.0, quick: bool = True) -> dict:
    return {
        "divergence": False,
        "micro": {
            "maxmin_solver": {"speedup": 5.0, "identical": True},
            "kernel_cancel": {"run_s": 0.03, "identical": True},
        },
        "macro": {
            "fig6": {
                "speedup": fig6_speedup,
                "total_fast_s": 0.02,
                "identical": True,
            },
        },
        "manifest": {
            "created_at": "2026-01-01T00:00:00+0000",
            "git_rev": "abc123",
            "config_hash": "deadbeef",
            "config": {"quick": quick, "seed": 2011, "sizes_gb": None},
        },
    }


class TestFlatten:
    def test_speedups_and_wall_seconds(self):
        m = history.flatten_metrics(_report())
        assert m["macro.fig6.speedup"] == 2.0
        assert m["macro.fig6.total_fast_s"] == 0.02
        assert m["micro.maxmin_solver.speedup"] == 5.0
        assert m["micro.kernel_cancel.run_s"] == 0.03

    def test_only_speedups_gate(self):
        assert history.is_gated("macro.fig6.speedup")
        assert not history.is_gated("macro.fig6.total_fast_s")
        assert not history.is_gated("micro.kernel_cancel.run_s")


class TestCompatibility:
    def test_same_config_is_compatible(self):
        a = history.make_entry(_report())
        b = history.make_entry(_report(fig6_speedup=3.0))
        assert history.compatible(a, b)

    def test_quick_vs_full_is_not(self):
        a = history.make_entry(_report(quick=True))
        b = history.make_entry(_report(quick=False))
        assert not history.compatible(a, b)


class TestCompare:
    def test_cold_start_never_regresses(self):
        entry = history.make_entry(_report())
        deltas, prev = history.compare(entry, [])
        assert prev is None
        assert not any(d.regressed for d in deltas)

    def test_within_threshold_passes(self):
        old = history.make_entry(_report(fig6_speedup=2.0))
        new = history.make_entry(_report(fig6_speedup=1.9))  # -5%
        deltas, prev = history.compare(new, [old], threshold=0.25)
        assert prev is old
        assert not any(d.regressed for d in deltas)

    def test_beyond_threshold_regresses(self):
        old = history.make_entry(_report(fig6_speedup=4.0))
        new = history.make_entry(_report(fig6_speedup=2.0))  # -50%
        deltas, _ = history.compare(new, [old], threshold=0.25)
        bad = [d for d in deltas if d.regressed]
        assert [d.metric for d in bad] == ["macro.fig6.speedup"]

    def test_wall_seconds_never_gate(self):
        old = history.make_entry(_report())
        new = history.make_entry(_report())
        new["metrics"]["macro.fig6.total_fast_s"] = 100.0  # 5000x slower
        deltas, _ = history.compare(new, [old], threshold=0.25)
        assert not any(d.regressed for d in deltas)

    def test_incompatible_history_is_ignored(self):
        full = history.make_entry(_report(fig6_speedup=100.0, quick=False))
        new = history.make_entry(_report(fig6_speedup=2.0, quick=True))
        deltas, prev = history.compare(new, [full], threshold=0.25)
        assert prev is None
        assert not any(d.regressed for d in deltas)

    def test_metric_missing_from_baseline_never_gates(self):
        # The previous entry predates a metric (say, the scalability
        # macro landed after the baseline was recorded): the new metric
        # reports with no previous/delta and must not gate.
        old = history.make_entry(_report())
        del old["metrics"]["macro.fig6.speedup"]
        new = history.make_entry(_report(fig6_speedup=0.01))
        deltas, prev = history.compare(new, [old], threshold=0.25)
        assert prev is old
        fig6 = next(d for d in deltas if d.metric == "macro.fig6.speedup")
        assert fig6.gated
        assert fig6.previous is None
        assert fig6.delta is None
        assert not fig6.regressed

    def test_new_macro_does_not_gate_against_old_baseline(self):
        old = history.make_entry(_report())
        raw = _report()
        raw["macro"]["scalability"] = {
            "speedup": 1.1,
            "total_fast_s": 4.0,
            "identical": True,
            "deterministic": True,
        }
        new = history.make_entry(raw)
        deltas, prev = history.compare(new, [old], threshold=0.25)
        assert prev is old
        scal = next(
            d for d in deltas if d.metric == "macro.scalability.speedup"
        )
        assert scal.gated  # it WILL gate once a baseline records it...
        assert scal.previous is None  # ...but not on its first appearance
        assert not scal.regressed
        assert not any(d.regressed for d in deltas)

    def test_best_tracks_the_extreme(self):
        entries = [
            history.make_entry(_report(fig6_speedup=s)) for s in (2.0, 3.5, 3.0)
        ]
        new = history.make_entry(_report(fig6_speedup=3.4))
        deltas, _ = history.compare(new, entries, threshold=0.25)
        fig6 = next(d for d in deltas if d.metric == "macro.fig6.speedup")
        assert fig6.best == 3.5
        assert fig6.previous == 3.0
        assert not fig6.regressed


class TestHistoryFile:
    def test_append_and_load_round_trip(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        e1 = history.make_entry(_report(fig6_speedup=2.0))
        e2 = history.make_entry(_report(fig6_speedup=2.5))
        history.append_history(path, e1)
        history.append_history(path, e2)
        loaded = history.load_history(path)
        assert loaded == [e1, e2]

    def test_missing_file_is_empty_history(self, tmp_path):
        assert history.load_history(tmp_path / "nope.jsonl") == []


class TestCliGate:
    """``bench --compare`` exit codes, with the bench itself stubbed."""

    def _run(self, monkeypatch, tmp_path, argv, speedup: float) -> int:
        from repro.bench import cli

        def fake_bench(**_kwargs):
            raw = _report(fig6_speedup=speedup)
            return BenchReport(micro=raw["micro"], macro=raw["macro"])

        monkeypatch.setattr(cli, "run_bench", fake_bench)
        out = tmp_path / "B.json"
        return cli.main(["--quick", "--out", str(out), *argv])

    def test_first_run_has_no_baseline_and_exits_zero(self, monkeypatch, tmp_path):
        # Cold start: no history file at all.  Nothing gates, the run
        # is recorded, and the exit code is clean.
        hist = tmp_path / "fresh.jsonl"
        assert not hist.exists()
        rc = self._run(
            monkeypatch, tmp_path, ["--compare", "--history", str(hist)], 2.0
        )
        assert rc == 0
        assert len(history.load_history(hist)) == 1

    def test_injected_divergence_exits_nonzero(self, monkeypatch, tmp_path):
        # A macro whose fast-path exports diverged must fail the run
        # even when every speedup improved.
        from repro.bench import cli

        def fake_bench(**_kwargs):
            raw = _report(fig6_speedup=100.0)
            report = BenchReport()
            for name, entry in raw["micro"].items():
                report.record("micro", name, entry)
            for name, entry in raw["macro"].items():
                report.record("macro", name, entry)
            report.record(
                "macro",
                "scalability",
                {"speedup": 5.0, "total_fast_s": 1.0, "identical": False},
            )
            return report

        monkeypatch.setattr(cli, "run_bench", fake_bench)
        out = tmp_path / "B.json"
        rc = cli.main(["--quick", "--out", str(out)])
        assert rc != 0
        assert json.loads(out.read_text())["divergence"] is True

    def test_injected_nondeterminism_exits_nonzero(self, monkeypatch, tmp_path):
        from repro.bench import cli

        def fake_bench(**_kwargs):
            report = BenchReport()
            report.record(
                "macro",
                "scalability",
                {
                    "speedup": 5.0,
                    "total_fast_s": 1.0,
                    "identical": True,
                    "deterministic": False,
                },
            )
            return report

        monkeypatch.setattr(cli, "run_bench", fake_bench)
        out = tmp_path / "B.json"
        assert cli.main(["--quick", "--out", str(out)]) != 0

    def test_clean_rerun_exits_zero(self, monkeypatch, tmp_path):
        hist = tmp_path / "H.jsonl"
        assert self._run(monkeypatch, tmp_path, ["--compare", "--history", str(hist)], 2.0) == 0
        assert self._run(monkeypatch, tmp_path, ["--compare", "--history", str(hist)], 2.0) == 0
        assert len(history.load_history(hist)) == 2

    def test_injected_regression_exits_nonzero(self, monkeypatch, tmp_path):
        hist = tmp_path / "H.jsonl"
        assert self._run(monkeypatch, tmp_path, ["--compare", "--history", str(hist)], 4.0) == 0
        code = self._run(
            monkeypatch, tmp_path, ["--compare", "--history", str(hist)], 2.0
        )
        assert code != 0

    def test_no_append_leaves_history_alone(self, monkeypatch, tmp_path):
        hist = tmp_path / "H.jsonl"
        assert self._run(monkeypatch, tmp_path, ["--compare", "--history", str(hist)], 2.0) == 0
        self._run(
            monkeypatch,
            tmp_path,
            ["--compare", "--history", str(hist), "--no-append"],
            2.0,
        )
        assert len(history.load_history(hist)) == 1

    def test_compare_json_report(self, monkeypatch, tmp_path):
        hist = tmp_path / "H.jsonl"
        cmp_path = tmp_path / "cmp.json"
        self._run(monkeypatch, tmp_path, ["--compare", "--history", str(hist)], 2.0)
        self._run(
            monkeypatch,
            tmp_path,
            ["--compare", "--history", str(hist), "--compare-json", str(cmp_path)],
            2.0,
        )
        data = json.loads(cmp_path.read_text())
        assert data["previous_rev"]
        metrics = {d["metric"] for d in data["deltas"]}
        assert "macro.fig6.speedup" in metrics
        assert not any(d["regressed"] for d in data["deltas"])
