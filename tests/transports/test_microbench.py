"""Tests for the micro-benchmark harness (paper methodology)."""

import pytest

from repro.transports import (
    BandwidthBench,
    HadoopRpcTransport,
    LatencyBench,
    MpichTransport,
)
from repro.transports.microbench import (
    default_bandwidth_packets,
    default_latency_sizes,
)
from repro.util.units import MiB


class TestLatencyBench:
    def test_deterministic_given_seed(self):
        b1 = LatencyBench(MpichTransport(), trials=20, seed=1)
        b2 = LatencyBench(MpichTransport(), trials=20, seed=1)
        assert b1.measure(1024).latency == b2.measure(1024).latency

    def test_different_seed_different_noise(self):
        b1 = LatencyBench(MpichTransport(), trials=20, seed=1)
        b2 = LatencyBench(MpichTransport(), trials=20, seed=2)
        assert b1.measure(1024).latency != b2.measure(1024).latency

    def test_mean_close_to_model(self):
        bench = LatencyBench(MpichTransport(), trials=100)
        model = MpichTransport().latency(4096)
        assert bench.measure(4096).latency == pytest.approx(model, rel=0.05)

    def test_drops_jvm_warmup_trials(self):
        rpc = HadoopRpcTransport()
        bench = LatencyBench(rpc, trials=100)
        res = bench.measure(1024)
        assert res.dropped == 5
        # Without dropping, warmup inflates the mean.
        raw = LatencyBench(rpc, trials=100, drop_first=0).measure(1024)
        assert raw.latency > res.latency

    def test_mpi_not_dropped(self):
        res = LatencyBench(MpichTransport(), trials=50).measure(64)
        assert res.dropped == 0

    def test_sweep_covers_default_sizes(self):
        bench = LatencyBench(MpichTransport(), trials=5)
        results = bench.sweep([1, 16, 1024])
        assert [r.nbytes for r in results] == [1, 16, 1024]

    def test_trials_validation(self):
        bench = LatencyBench(MpichTransport(), trials=0)
        with pytest.raises(ValueError):
            bench.measure(1)


class TestBandwidthBench:
    def test_deterministic(self):
        b = BandwidthBench(MpichTransport(), seed=9)
        assert b.measure(4096).bandwidth == BandwidthBench(
            MpichTransport(), seed=9
        ).measure(4096).bandwidth

    def test_bandwidth_equals_total_over_elapsed(self):
        res = BandwidthBench(MpichTransport(), jitter=False).measure(1 * MiB)
        assert res.bandwidth == pytest.approx(res.total_bytes / res.elapsed)

    def test_no_jitter_matches_model(self):
        t = MpichTransport()
        res = BandwidthBench(t, jitter=False).measure(64 * MiB)
        assert res.bandwidth == pytest.approx(t.bandwidth(128 * MiB, 64 * MiB))

    def test_sweep(self):
        res = BandwidthBench(MpichTransport(), jitter=False).sweep([256, 4096])
        assert [r.packet_bytes for r in res] == [256, 4096]


class TestDefaults:
    def test_size_grids_span_paper_range(self):
        sizes = default_latency_sizes()
        assert sizes[0] == 1
        assert sizes[-1] == 64 * MiB
        packets = default_bandwidth_packets()
        assert packets[0] == 1 and packets[-1] == 64 * MiB
