"""Tests that the three transport models reproduce the paper's Section II-B.

These are the quantitative heart of Figures 2 and 3: the *ratios* between
transports at the published message sizes.  Tolerances are loose (the
paper reports rounded numbers) but the ordering and orders of magnitude
are asserted tightly.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.transports import (
    HadoopRpcTransport,
    JettyHttpTransport,
    MpichTransport,
    NioSocketTransport,
)
from repro.util.units import KiB, MiB


@pytest.fixture(scope="module")
def mpich():
    return MpichTransport()


@pytest.fixture(scope="module")
def rpc():
    return HadoopRpcTransport()


@pytest.fixture(scope="module")
def jetty():
    return JettyHttpTransport()


@pytest.fixture(scope="module")
def nio():
    return NioSocketTransport()


ALL_TRANSPORTS = [
    MpichTransport(),
    HadoopRpcTransport(),
    JettyHttpTransport(),
    NioSocketTransport(),
]


class TestMpichLatency:
    def test_small_messages_under_1ms(self, mpich):
        # "the latency of MPICH2 does not exceed 1 ms" for 1 B - 1 KB.
        for n in (1, 16, 256, 1024):
            assert mpich.latency(n) < 1e-3

    def test_1mb_near_paper(self, mpich):
        # Paper: 10.2-10.3 ms at 1 MB.
        assert mpich.latency(1 * MiB) == pytest.approx(10.3e-3, rel=0.15)

    def test_64mb_near_paper(self, mpich):
        # Paper: 572 ms at 64 MB.
        assert mpich.latency(64 * MiB) == pytest.approx(0.572, rel=0.05)

    def test_eager_rendezvous_continuity_order(self, mpich):
        # Rendezvous adds a handshake: latency is still monotone overall.
        below = mpich.latency(mpich.eager_limit)
        above = mpich.latency(mpich.eager_limit + 1)
        assert above > 0 and below > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            MpichTransport(latency_0=-1)
        with pytest.raises(ValueError):
            MpichTransport(eager_limit=-5)
        m = MpichTransport()
        with pytest.raises(ValueError):
            m.latency(-1)
        with pytest.raises(ValueError):
            m.packet_stream_cost(0)


class TestRpcLatency:
    def test_small_message_plateau(self, rpc):
        # "when the message size varies from 1 byte to 16 bytes, the
        # latency of Hadoop RPC is about 1.3 ms".
        assert rpc.latency(1) == pytest.approx(1.3e-3, rel=0.01)
        assert rpc.latency(16) == pytest.approx(1.3e-3, rel=0.01)

    def test_1kb_anchor(self, rpc):
        assert rpc.latency(1 * KiB) == pytest.approx(8.9e-3, rel=0.01)

    def test_1mb_anchor(self, rpc):
        assert rpc.latency(1 * MiB) == pytest.approx(1.259, rel=0.01)

    def test_64mb_anchor(self, rpc):
        assert rpc.latency(64 * MiB) == pytest.approx(56.827, rel=0.01)

    def test_zero_bytes_same_floor_as_one(self, rpc):
        assert rpc.latency(0) == rpc.latency(1)


class TestPaperRatios:
    """The headline comparisons of Section II-B."""

    def test_1byte_ratio_2p49(self, rpc, mpich):
        ratio = rpc.latency(1) / mpich.latency(1)
        assert ratio == pytest.approx(2.49, rel=0.05)

    def test_1kb_ratio_about_15(self, rpc, mpich):
        ratio = rpc.latency(1 * KiB) / mpich.latency(1 * KiB)
        assert 12 <= ratio <= 18  # paper: 15.1

    def test_beyond_256kb_ratio_over_100(self, rpc, mpich):
        for n in (256 * KiB, 512 * KiB, 1 * MiB, 4 * MiB):
            assert rpc.latency(n) / mpich.latency(n) >= 90

    def test_1mb_ratio_peak_about_123(self, rpc, mpich):
        ratio = rpc.latency(1 * MiB) / mpich.latency(1 * MiB)
        assert ratio == pytest.approx(123, rel=0.15)

    def test_latency_two_orders_of_magnitude_at_large_sizes(self, rpc, mpich):
        # "the message latency of MPI is about 100 times less than Hadoop
        # primitives"
        assert rpc.latency(1 * MiB) / mpich.latency(1 * MiB) > 100


class TestBandwidth:
    def test_rpc_peak_about_1p4_mbps(self, rpc):
        # "The largest bandwidth achieved by the Hadoop RPC is only
        # 1.4 MB per second."
        peaks = [rpc.bandwidth(128 * MiB, p) for p in (8 * MiB, 32 * MiB, 64 * MiB)]
        assert max(peaks) < 2.0e6
        assert max(peaks) > 0.8e6

    def test_jetty_effective_beyond_256_bytes(self, jetty):
        # "about 80 MB per second to more than 100 MB per second"
        assert jetty.bandwidth(128 * MiB, 256) >= 75e6
        assert jetty.bandwidth(128 * MiB, 64 * MiB) >= 100e6

    def test_jetty_peak_about_108(self, jetty):
        assert jetty.bandwidth(128 * MiB, 64 * MiB) == pytest.approx(108e6, rel=0.02)

    def test_mpich_peak_about_111(self, mpich):
        assert mpich.bandwidth(128 * MiB, 64 * MiB) == pytest.approx(111e6, rel=0.02)

    def test_mpich_2_to_3_percent_above_jetty(self, mpich, jetty):
        m = mpich.bandwidth(128 * MiB, 64 * MiB)
        j = jetty.bandwidth(128 * MiB, 64 * MiB)
        assert 1.01 <= m / j <= 1.05  # paper: 2-3%

    def test_mpich_100x_rpc(self, mpich, rpc):
        m = mpich.bandwidth(128 * MiB, 64 * MiB)
        r = rpc.bandwidth(128 * MiB, 64 * MiB)
        assert m / r > 50  # "about 100 times"

    def test_mpich_60mbps_at_small_packets(self, mpich):
        assert mpich.bandwidth(128 * MiB, 256) == pytest.approx(60e6, rel=0.1)

    def test_nio_between_jetty_and_mpich_for_latency(self, nio, jetty, mpich):
        # NIO skips HTTP framing: cheaper setup than Jetty, dearer than MPI.
        assert mpich.latency(1) < nio.latency(1) < jetty.latency(1)


class TestTransportInvariants:
    @pytest.mark.parametrize("t", ALL_TRANSPORTS, ids=lambda t: t.name)
    @settings(max_examples=30, deadline=None)
    @given(n=st.integers(1, 64 * MiB))
    def test_latency_positive(self, t, n):
        assert t.latency(n) > 0

    @pytest.mark.parametrize("t", ALL_TRANSPORTS, ids=lambda t: t.name)
    def test_latency_monotone_nondecreasing(self, t):
        sizes = [2**i for i in range(0, 27)]
        lats = [t.latency(n) for n in sizes]
        for a, b in zip(lats, lats[1:]):
            assert b >= a - 1e-12

    @pytest.mark.parametrize("t", ALL_TRANSPORTS, ids=lambda t: t.name)
    @settings(max_examples=20, deadline=None)
    @given(p=st.integers(1, 64 * MiB))
    def test_bandwidth_below_wire_rate(self, t, p):
        # Nothing beats the 125 MB/s GigE wire.
        assert t.bandwidth(128 * MiB, p) <= 125e6 * 1.001

    @pytest.mark.parametrize("t", ALL_TRANSPORTS, ids=lambda t: t.name)
    def test_ping_pong_is_twice_latency(self, t):
        assert t.ping_pong(1024) == pytest.approx(2 * t.latency(1024))

    @pytest.mark.parametrize("t", ALL_TRANSPORTS, ids=lambda t: t.name)
    def test_stream_time_charges_partial_packet(self, t):
        # 100 bytes in 64-byte packets = one full + one 36-byte packet.
        full = t.packet_stream_cost(64) + t.packet_stream_cost(36)
        assert t.stream_time(100, 64) == pytest.approx(full)

    @pytest.mark.parametrize("t", ALL_TRANSPORTS, ids=lambda t: t.name)
    def test_wire_costs_valid(self, t):
        wc = t.wire_costs(1 * MiB)
        assert wc.setup_time >= 0
        assert wc.wire_bytes >= 1 * MiB
        assert wc.rate_cap > 0

    def test_stream_time_validation(self, ):
        t = MpichTransport()
        with pytest.raises(ValueError):
            t.stream_time(100, 0)
        with pytest.raises(ValueError):
            t.stream_time(-1, 64)
