"""Unit tests for :mod:`repro.transports.retry` (exponential backoff).

PR 3 introduced the policy but leaned on end-to-end fault-sweep tests;
these pin the arithmetic and validation directly.
"""

from __future__ import annotations

import random

import pytest

from repro.transports.retry import RetryPolicy


def test_defaults_expose_paper_style_backoff():
    p = RetryPolicy()
    assert p.base == 1.0
    assert p.factor == 2.0
    assert p.max_delay == 30.0
    assert p.retries == 4
    assert p.jitter == 0.5


def test_delay_is_one_based_geometric_without_jitter():
    p = RetryPolicy(base=0.5, factor=3.0, max_delay=100.0, retries=6, jitter=0.0)
    assert p.delay(1) == 0.5
    assert p.delay(2) == 1.5
    assert p.delay(3) == 4.5
    assert p.delay(4) == 13.5


def test_delay_clamps_at_max_delay():
    p = RetryPolicy(base=1.0, factor=2.0, max_delay=5.0, retries=10, jitter=0.0)
    assert [p.delay(a) for a in range(1, 6)] == [1.0, 2.0, 4.0, 5.0, 5.0]


def test_delay_rejects_bad_attempt_numbers():
    p = RetryPolicy(jitter=0.0)
    with pytest.raises(ValueError):
        p.delay(0)
    with pytest.raises(ValueError):
        p.delay(-1)


def test_jitter_bounds_and_determinism():
    p = RetryPolicy(base=2.0, factor=2.0, max_delay=60.0, retries=5, jitter=0.5)
    rng = random.Random(7)
    for attempt in range(1, 6):
        nominal = min(60.0, 2.0 * 2.0 ** (attempt - 1))
        for _ in range(50):
            d = p.delay(attempt, rng)
            assert nominal * 0.5 <= d <= nominal * 1.5
    # Same seed -> same jittered schedule (simulation determinism).
    a = [p.delay(i, random.Random(42)) for i in range(1, 6)]
    b = [p.delay(i, random.Random(42)) for i in range(1, 6)]
    assert a == b


def test_total_delay_sums_the_full_schedule():
    p = RetryPolicy(base=1.0, factor=2.0, max_delay=30.0, retries=4, jitter=0.0)
    assert p.total_delay() == 1.0 + 2.0 + 4.0 + 8.0


def test_zero_retries_means_no_backoff_budget():
    p = RetryPolicy(retries=0, jitter=0.0)
    assert p.total_delay() == 0.0


@pytest.mark.parametrize(
    "kwargs",
    [
        {"base": 0.0},
        {"base": -1.0},
        {"factor": 0.5},
        {"max_delay": 0.5},  # < base
        {"retries": -1},
        {"jitter": 1.0},
        {"jitter": -0.1},
    ],
)
def test_validation_rejects_bad_configs(kwargs):
    with pytest.raises(ValueError):
        RetryPolicy(**kwargs)
