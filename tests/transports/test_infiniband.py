"""InfiniBand transport model tests (future-work item 4)."""

import pytest

from repro.transports import MpichTransport
from repro.transports.infiniband import InfinibandTransport
from repro.util.units import KiB, MiB


@pytest.fixture(scope="module")
def ib():
    return InfinibandTransport()


class TestInfiniband:
    def test_microsecond_small_message_latency(self, ib):
        assert ib.latency(1) < 5e-6

    def test_orders_of_magnitude_below_gige_mpi(self, ib):
        gige = MpichTransport()
        assert gige.latency(1) / ib.latency(1) > 100

    def test_saturates_around_1p5_gbps(self, ib):
        bw = ib.bandwidth(128 * MiB, 4 * MiB)
        assert bw == pytest.approx(1.5e9, rel=0.05)

    def test_monotone_latency(self, ib):
        sizes = [2**i for i in range(0, 27)]
        lats = [ib.latency(n) for n in sizes]
        assert all(b >= a for a, b in zip(lats, lats[1:]))

    def test_rendezvous_adds_handshake(self, ib):
        below = ib.latency(ib.eager_limit)
        above = ib.latency(ib.eager_limit + 1)
        assert above > below

    def test_wire_costs(self, ib):
        wc = ib.wire_costs(1 * MiB)
        assert wc.rate_cap == pytest.approx(1.5e9)
        assert wc.setup_time > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            InfinibandTransport(latency_0=0)
        with pytest.raises(ValueError):
            InfinibandTransport(peak_bandwidth=-1)
        ib = InfinibandTransport()
        with pytest.raises(ValueError):
            ib.packet_stream_cost(0)
