"""Tests for the log-log interpolator and calibration constants."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.transports.calibration import (
    HADOOP_RPC_LATENCY_ANCHORS,
    MPICH_LATENCY_0,
    MPICH_RNDV_BANDWIDTH,
    LogLogInterpolator,
)
from repro.util.units import MiB


class TestLogLogInterpolator:
    def test_hits_anchors_exactly(self):
        interp = LogLogInterpolator([(1, 2.0), (100, 5.0), (10000, 80.0)])
        assert interp(1) == pytest.approx(2.0)
        assert interp(100) == pytest.approx(5.0)
        assert interp(10000) == pytest.approx(80.0)

    def test_power_law_between_anchors(self):
        # Anchors on y = x**2 must interpolate exactly on that law.
        interp = LogLogInterpolator([(1, 1.0), (10, 100.0)])
        assert interp(3) == pytest.approx(9.0)

    def test_extrapolates_with_edge_slope(self):
        interp = LogLogInterpolator([(1, 1.0), (10, 10.0)])  # y = x
        assert interp(100) == pytest.approx(100.0)
        assert interp(0.1) == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            LogLogInterpolator([(1, 1.0)])
        with pytest.raises(ValueError):
            LogLogInterpolator([(1, 1.0), (1, 2.0)])
        with pytest.raises(ValueError):
            LogLogInterpolator([(0, 1.0), (1, 2.0)])
        with pytest.raises(ValueError):
            LogLogInterpolator([(1, -1.0), (2, 2.0)])
        interp = LogLogInterpolator([(1, 1.0), (2, 2.0)])
        with pytest.raises(ValueError):
            interp(0)

    @given(st.floats(1e-3, 1e9))
    def test_monotone_anchor_set_gives_monotone_curve(self, x):
        anchors = [(1, 1.0), (1e3, 7.0), (1e6, 5000.0)]
        interp = LogLogInterpolator(anchors)
        # Monotone increasing anchors (in log-log) => monotone curve.
        assert interp(x * 1.01) >= interp(x) - 1e-12


class TestPaperAnchors:
    def test_rpc_anchor_floor(self):
        sizes = [s for s, _ in HADOOP_RPC_LATENCY_ANCHORS]
        assert sizes == sorted(sizes)
        assert HADOOP_RPC_LATENCY_ANCHORS[0][1] == pytest.approx(1.3e-3)

    def test_rpc_64mb_anchor(self):
        by_size = dict(HADOOP_RPC_LATENCY_ANCHORS)
        assert by_size[64 * MiB] == pytest.approx(56.827)

    def test_mpich_1byte_is_2p49x_below_rpc(self):
        assert 1.3e-3 / MPICH_LATENCY_0 == pytest.approx(2.49)

    def test_mpich_rndv_bandwidth_near_gige(self):
        # Must land near (but below) the 125 MB/s GigE wire rate.
        assert 90e6 < MPICH_RNDV_BANDWIDTH < 125e6

    def test_constants_positive(self):
        assert MPICH_LATENCY_0 > 0
        assert not math.isnan(MPICH_RNDV_BANDWIDTH)
