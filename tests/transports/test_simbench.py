"""Cross-plane validation: transport models through the simulated cluster."""

import pytest

from repro.transports import (
    HadoopRpcTransport,
    JettyHttpTransport,
    MpichTransport,
    contended_transfer_time,
    sim_ping_pong,
)
from repro.util.units import KiB, MiB

TRANSPORTS = [MpichTransport(), JettyHttpTransport(), HadoopRpcTransport()]


class TestSimPingPong:
    @pytest.mark.parametrize("t", TRANSPORTS, ids=lambda t: t.name)
    @pytest.mark.parametrize("n", [1, 1 * KiB, 1 * MiB])
    def test_sim_close_to_model(self, t, n):
        """The DES decomposition must agree with the analytic latency to
        within ~25% (framing/latency charging differs slightly)."""
        res = sim_ping_pong(t, n)
        assert res.sim_latency == pytest.approx(res.model_latency, rel=0.25)

    def test_ordering_preserved_in_sim(self):
        """MPI < Jetty < RPC at 1 MB, in the simulated plane too."""
        lat = {
            t.name: sim_ping_pong(t, 1 * MiB).sim_latency for t in TRANSPORTS
        }
        assert lat["MPICH2"] < lat["HTTP/Jetty"] < lat["Hadoop RPC"]


class TestContention:
    def test_fan_in_slows_transfers(self):
        solo = contended_transfer_time(MpichTransport(), 4 * MiB, 1)
        crowded = contended_transfer_time(MpichTransport(), 4 * MiB, 7)
        assert crowded > solo * 3  # 7 senders share one downlink

    def test_rpc_unaffected_by_contention(self):
        """Hadoop RPC is protocol-bound at ~1.4 MB/s: seven senders fit
        in a GigE downlink without touching each other."""
        solo = contended_transfer_time(HadoopRpcTransport(), 1 * MiB, 1)
        crowded = contended_transfer_time(HadoopRpcTransport(), 1 * MiB, 7)
        assert crowded == pytest.approx(solo, rel=0.3)

    def test_validation(self):
        with pytest.raises(ValueError):
            contended_transfer_time(MpichTransport(), 1024, 0)
