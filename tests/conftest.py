"""Suite-wide test configuration.

Hypothesis: no per-example deadline (several properties spin up real
rank-threads or short simulations whose wall time varies with machine
load) and a fixed derandomized profile so CI failures reproduce locally.
"""

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
