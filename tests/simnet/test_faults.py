"""Fault-injection subsystem: plans, injector processes, kernel Interrupt
safety under randomized schedules."""

import numpy as np
import pytest

from repro.simnet.cluster import Cluster, ClusterSpec
from repro.simnet.faults import (
    CrashRate,
    DiskDegradation,
    FaultInjector,
    FaultPlan,
    LinkDegradation,
    NodeCrash,
    Straggler,
)
from repro.simnet.kernel import Interrupt, Simulator
from repro.simnet.resources import RateDevice, SlotPool


# -- spec validation (eager, mirrors HadoopConfig.validate) -------------------
class TestSpecValidation:
    def test_negative_crash_time_rejected(self):
        with pytest.raises(ValueError):
            NodeCrash(node=1, at=-1.0)

    def test_negative_node_rejected(self):
        with pytest.raises(ValueError):
            NodeCrash(node=-1, at=1.0)

    def test_zero_restart_rejected(self):
        with pytest.raises(ValueError):
            NodeCrash(node=1, at=1.0, restart_after=0.0)

    def test_nonpositive_rate_rejected(self):
        with pytest.raises(ValueError):
            CrashRate(rate=0.0)
        with pytest.raises(ValueError):
            CrashRate(rate=-0.5)

    def test_empty_node_tuple_rejected(self):
        with pytest.raises(ValueError):
            CrashRate(rate=0.1, nodes=())

    def test_speedup_factor_rejected(self):
        with pytest.raises(ValueError):
            DiskDegradation(node=1, at=0.0, factor=0.5)

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(ValueError):
            Straggler(node=1, at=0.0, factor=2.0, duration=0.0)

    def test_non_spec_rejected(self):
        with pytest.raises(TypeError):
            FaultPlan(specs=("not a spec",))

    def test_crash_of_nonexistent_node(self):
        plan = FaultPlan(specs=(NodeCrash(node=9, at=1.0),))
        with pytest.raises(ValueError, match="nodes 0..7"):
            plan.validate(num_nodes=8)

    def test_crash_rate_of_nonexistent_node(self):
        plan = FaultPlan(specs=(CrashRate(rate=0.1, nodes=(3, 12)),))
        with pytest.raises(ValueError, match="node 12"):
            plan.validate(num_nodes=8)

    def test_empty_plan_is_falsy(self):
        assert not FaultPlan()
        assert FaultPlan(specs=(NodeCrash(node=1, at=1.0),))


# -- the analytic crash timeline ---------------------------------------------
class TestCrashTimes:
    def test_one_shot_crashes_within_horizon(self):
        plan = FaultPlan(
            specs=(NodeCrash(node=1, at=5.0), NodeCrash(node=2, at=50.0))
        )
        assert plan.crash_times([1, 2], horizon=10.0) == [5.0]
        assert plan.crash_times([1, 2], horizon=100.0) == [5.0, 50.0]
        assert plan.crash_times([2], horizon=100.0) == [50.0]

    def test_rate_timeline_deterministic(self):
        plan = FaultPlan(specs=(CrashRate(rate=0.01, restart_after=10.0),), seed=42)
        a = plan.crash_times([1, 2, 3], horizon=1000.0)
        b = plan.crash_times([1, 2, 3], horizon=1000.0)
        assert a == b and len(a) > 0

    def test_rate_timeline_prefix_consistent(self):
        """Extending the horizon only appends — earlier crashes never move."""
        plan = FaultPlan(specs=(CrashRate(rate=0.02, restart_after=5.0),), seed=7)
        short = plan.crash_times([1, 2], horizon=500.0)
        long = plan.crash_times([1, 2], horizon=2000.0)
        assert long[: len(short)] == short
        assert len(long) > len(short)

    def test_per_node_streams_independent(self):
        """Adding node 5 to the target set never perturbs node 3's times."""
        plan = FaultPlan(specs=(CrashRate(rate=0.02, restart_after=5.0),), seed=7)
        without = plan.crash_times([3], horizon=1000.0)
        with_extra = plan.crash_times([3, 5], horizon=1000.0)
        assert set(without) <= set(with_extra)

    def test_seed_changes_timeline(self):
        mk = lambda s: FaultPlan(
            specs=(CrashRate(rate=0.02, restart_after=5.0),), seed=s
        ).crash_times([1], horizon=1000.0)
        assert mk(1) != mk(2)

    def test_negative_horizon_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan().crash_times([1], horizon=-1.0)


# -- kernel Interrupt safety: the property the whole subsystem leans on -------
class TestInterruptSafety:
    def test_randomized_interrupts_keep_time_monotonic(self):
        """Interrupting processes mid-yield at random times never makes the
        clock step backwards or corrupts the run."""
        for seed in range(25):
            rng = np.random.default_rng(seed)
            sim = Simulator()
            log: list[float] = []
            delays = rng.uniform(0.1, 2.0, size=(6, 5))

            def worker(i, row):
                try:
                    for d in row:
                        yield sim.timeout(float(d))
                        log.append(sim.now)
                except Interrupt:
                    log.append(sim.now)

            procs = [sim.process(worker(i, delays[i])) for i in range(6)]

            def chaos():
                for _ in range(4):
                    yield sim.timeout(float(rng.uniform(0.05, 2.0)))
                    victim = procs[int(rng.integers(6))]
                    if victim.is_alive:
                        victim.interrupt("chaos")

            sim.process(chaos())
            sim.run()
            assert log == sorted(log), f"clock went backwards (seed {seed})"
            assert all(p.triggered for p in procs)

    def test_interrupt_preserves_fifo_of_survivors(self):
        """Same-time timeouts of surviving processes still fire in creation
        (FIFO) order after an unrelated process is interrupted mid-wait."""
        for victim in range(8):
            sim = Simulator()
            order: list[int] = []

            def waiter(i):
                try:
                    yield sim.timeout(1.0)
                    order.append(i)
                except Interrupt:
                    pass

            procs = [sim.process(waiter(i)) for i in range(8)]

            def chaos():
                yield sim.timeout(0.5)
                procs[victim].interrupt("die")

            sim.process(chaos())
            sim.run()
            assert order == [i for i in range(8) if i != victim]

    def test_interrupted_acquire_does_not_leak_slot(self):
        """The cancel() pattern: killing a process queued on a full pool
        leaves the pool's capacity intact for everyone else."""
        sim = Simulator()
        pool = SlotPool(sim, 1)
        held: list[str] = []

        def holder():
            req = pool.acquire()
            try:
                yield req
                held.append("holder")
                yield sim.timeout(10.0)
            finally:
                pool.cancel(req)

        def doomed():
            req = pool.acquire()
            try:
                yield req
                held.append("doomed")
            except Interrupt:
                pass
            finally:
                pool.cancel(req)

        def late():
            yield sim.timeout(5.0)
            req = pool.acquire()
            try:
                yield req
                held.append("late")
            finally:
                pool.cancel(req)

        sim.process(holder())
        victim = sim.process(doomed())

        def chaos():
            yield sim.timeout(1.0)
            victim.interrupt("die")

        sim.process(chaos())
        sim.process(late())
        sim.run()
        assert held == ["holder", "late"]
        assert pool.in_use == 0


# -- the injector on a real cluster ------------------------------------------
class _RecordingHost:
    def __init__(self):
        self.events: list[tuple[str, int, float]] = []

    def crash_node(self, node_id, now):
        self.events.append(("crash", node_id, now))

    def restart_node(self, node_id, now):
        self.events.append(("restart", node_id, now))


def _cluster():
    sim = Simulator()
    return sim, Cluster(sim, ClusterSpec(num_nodes=4))


class TestFaultInjector:
    def test_one_shot_crash_and_restart(self):
        sim, cluster = _cluster()
        host = _RecordingHost()
        plan = FaultPlan(specs=(NodeCrash(node=2, at=3.0, restart_after=4.0),))
        inj = FaultInjector(sim, cluster, plan, host)
        inj.start()
        sim.run()
        assert host.events == [("crash", 2, 3.0), ("restart", 2, 7.0)]
        assert inj.crashes_injected == 1 and inj.restarts_injected == 1

    def test_injector_validates_plan_against_cluster(self):
        sim, cluster = _cluster()
        plan = FaultPlan(specs=(NodeCrash(node=7, at=1.0),))
        with pytest.raises(ValueError):
            FaultInjector(sim, cluster, plan, _RecordingHost())

    def test_churn_matches_analytic_timeline(self):
        """The DES injector fires at exactly the instants crash_times()
        predicts — the contract that keeps Hadoop and MPI-D comparable."""
        sim, cluster = _cluster()
        host = _RecordingHost()
        plan = FaultPlan(
            specs=(CrashRate(rate=0.05, nodes=(1, 2, 3), restart_after=7.0),),
            seed=13,
        )
        inj = FaultInjector(sim, cluster, plan, host)
        inj.start()

        def stopper():
            yield sim.timeout(200.0)
            inj.stop()

        sim.process(stopper())
        sim.run()
        observed = sorted(t for kind, _, t in host.events if kind == "crash")
        expected = [t for t in plan.crash_times((1, 2, 3), horizon=1000.0) if t <= 200.0]
        assert observed == pytest.approx(expected)

    def test_stop_kills_open_ended_churn(self):
        sim, cluster = _cluster()
        plan = FaultPlan(specs=(CrashRate(rate=0.01),), seed=3)
        inj = FaultInjector(sim, cluster, plan, _RecordingHost())
        inj.start()

        def stopper():
            yield sim.timeout(10.0)
            inj.stop()

        sim.process(stopper())
        sim.run()  # would never drain if churn processes survived stop()

    def test_disk_degradation_slows_then_recovers(self):
        sim, cluster = _cluster()
        plan = FaultPlan(
            specs=(DiskDegradation(node=1, at=5.0, factor=2.0, duration=10.0),)
        )
        inj = FaultInjector(sim, cluster, plan, _RecordingHost())
        inj.start()
        disk = cluster.node(1).disk
        base = disk.rate
        rates: list[float] = []

        def probe():
            yield sim.timeout(6.0)
            rates.append(disk.rate)
            yield sim.timeout(20.0)
            rates.append(disk.rate)

        sim.process(probe())
        sim.run()
        assert rates[0] == pytest.approx(base / 2.0)
        assert rates[1] == pytest.approx(base)
        assert inj.degradations_applied == 1

    def test_straggler_scales_links_too(self):
        sim, cluster = _cluster()
        node = cluster.node(2)
        up, down = node.uplink.capacity, node.downlink.capacity
        disk = node.disk.rate
        plan = FaultPlan(specs=(Straggler(node=2, at=1.0, factor=4.0),))
        inj = FaultInjector(sim, cluster, plan, _RecordingHost())
        inj.start()
        sim.run()
        assert node.uplink.capacity == pytest.approx(up / 4.0)
        assert node.downlink.capacity == pytest.approx(down / 4.0)
        assert node.disk.rate == pytest.approx(disk / 4.0)

    def test_link_degradation_affects_transfer_time(self):
        sim, cluster = _cluster()
        plan = FaultPlan(specs=(LinkDegradation(node=1, at=0.0, factor=2.0),))
        FaultInjector(sim, cluster, plan, _RecordingHost()).start()
        done: list[float] = []

        def sender():
            yield sim.timeout(1.0)  # after the degradation lands
            flow = cluster.send(1, 2, 100 * 1024 * 1024)
            yield flow
            done.append(sim.now)

        sim.process(sender())
        sim.run()
        # Halved uplink => the same bytes take twice the clean wire time.
        clean = 100 * 1024 * 1024 / ClusterSpec().link_bandwidth
        assert done[0] - 1.0 == pytest.approx(2.0 * clean, rel=0.05)


class TestRateDeviceSetRate:
    def test_set_rate_conserves_served_work(self):
        sim = Simulator()
        dev = RateDevice(sim, rate=100.0)
        finished: list[float] = []

        def job():
            ev = dev.transfer(1000.0)
            yield ev
            finished.append(sim.now)

        def slowdown():
            yield sim.timeout(5.0)  # 500 bytes served at rate 100
            dev.set_rate(50.0)  # remaining 500 at rate 50 => 10 more seconds

        sim.process(job())
        sim.process(slowdown())
        sim.run()
        assert finished[0] == pytest.approx(15.0)

    def test_set_rate_validates(self):
        sim = Simulator()
        dev = RateDevice(sim, rate=100.0)
        with pytest.raises(ValueError):
            dev.set_rate(0.0)
