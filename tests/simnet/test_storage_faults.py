"""Storage fault specs: validation, shifting, analytic twins, and the
injector's dispatch to a StorageFaultHost."""

import pytest

from repro.simnet.cluster import Cluster, ClusterSpec
from repro.simnet.faults import (
    STORAGE_FAULT_SPECS,
    BlockCorruption,
    Decommission,
    DiskFailure,
    FaultInjector,
    FaultPlan,
    FlowLossRate,
)
from repro.simnet.kernel import Simulator


class TestSpecValidation:
    def test_nonpositive_disk_rate_rejected(self):
        with pytest.raises(ValueError):
            DiskFailure(rate=0.0)
        with pytest.raises(ValueError):
            DiskFailure(rate=-1.0)

    def test_nonpositive_corruption_rate_rejected(self):
        with pytest.raises(ValueError):
            BlockCorruption(rate=0.0)

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            DiskFailure(rate=0.1, start=-1.0)

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(ValueError):
            BlockCorruption(rate=0.1, duration=0.0)

    def test_empty_node_tuple_rejected(self):
        with pytest.raises(ValueError):
            DiskFailure(rate=0.1, nodes=())

    def test_negative_node_rejected(self):
        with pytest.raises(ValueError):
            Decommission(node=-1)
        with pytest.raises(ValueError):
            DiskFailure(rate=0.1, nodes=(1, -2))

    def test_negative_decommission_time_rejected(self):
        with pytest.raises(ValueError):
            Decommission(node=1, at=-0.5)

    def test_specs_accepted_by_plan(self):
        plan = FaultPlan(
            specs=(
                DiskFailure(rate=0.1, nodes=(1, 2)),
                BlockCorruption(rate=0.2),
                Decommission(node=3, at=5.0),
            )
        )
        assert plan.has_storage_faults()
        assert not plan.has_network_faults()


class TestShifted:
    def test_disk_failure_window_clips(self):
        plan = FaultPlan(
            specs=(DiskFailure(rate=0.1, start=10.0, duration=20.0),)
        )
        (spec,) = plan.shifted(15.0).specs
        assert spec.start == 0.0
        assert spec.duration == pytest.approx(15.0)

    def test_expired_window_dropped(self):
        plan = FaultPlan(
            specs=(BlockCorruption(rate=0.1, start=0.0, duration=5.0),)
        )
        assert plan.shifted(10.0).specs == ()

    def test_open_ended_survives(self):
        plan = FaultPlan(specs=(DiskFailure(rate=0.1),))
        (spec,) = plan.shifted(100.0).specs
        assert spec.start == 0.0 and spec.duration is None

    def test_decommission_never_dropped(self):
        # A decommission in the past does not un-happen on restart: the
        # node is still out of the pool, so the spec re-fires at t=0.
        plan = FaultPlan(specs=(Decommission(node=2, at=5.0),))
        (spec,) = plan.shifted(100.0).specs
        assert isinstance(spec, Decommission)
        assert spec.node == 2 and spec.at == 0.0

    def test_future_decommission_re_anchored(self):
        plan = FaultPlan(specs=(Decommission(node=2, at=50.0),))
        (spec,) = plan.shifted(20.0).specs
        assert spec.at == pytest.approx(30.0)


class TestDiskFailureTimes:
    def test_deterministic(self):
        plan = FaultPlan(specs=(DiskFailure(rate=0.05),), seed=7)
        a = plan.disk_failure_times((1, 2, 3), horizon=200.0)
        b = plan.disk_failure_times((1, 2, 3), horizon=200.0)
        assert a == b and a

    def test_prefix_consistency(self):
        plan = FaultPlan(specs=(DiskFailure(rate=0.05),), seed=7)
        short = plan.disk_failure_times((1, 2, 3), horizon=100.0)
        long = plan.disk_failure_times((1, 2, 3), horizon=400.0)
        assert long[: len(short)] == short
        assert len(long) > len(short)

    def test_per_node_stream_isolation(self):
        # Adding node 4's stream must not move node 1-3's failure times.
        plan = FaultPlan(specs=(DiskFailure(rate=0.05),), seed=7)
        three = plan.disk_failure_times((1, 2, 3), horizon=300.0)
        four = plan.disk_failure_times((1, 2, 3, 4), horizon=300.0)
        assert [tn for tn in four if tn[1] != 4] == three

    def test_window_respected(self):
        plan = FaultPlan(
            specs=(DiskFailure(rate=0.5, start=10.0, duration=20.0),), seed=3
        )
        times = plan.disk_failure_times((1,), horizon=1000.0)
        assert times
        assert all(10.0 < t <= 30.0 for t, _ in times)


class _NullHost:
    """FaultHost stub: storage specs never crash nodes."""

    def crash_node(self, node_id, now):
        raise AssertionError("storage specs must not crash nodes")

    def restart_node(self, node_id, now):
        raise AssertionError("storage specs must not restart nodes")


class _RecordingStorage:
    """StorageFaultHost stub: records every dispatch."""

    def __init__(self):
        self.calls = []

    def disk_failed(self, node_id, now):
        self.calls.append(("disk", node_id, now))

    def corrupt_replica(self, node_id, now, rng):
        self.calls.append(("corrupt", node_id, now))
        return True

    def decommission(self, node_id, now):
        self.calls.append(("decom", node_id, now))


class TestInjectorDispatch:
    def _run(self, plan, until=100.0):
        sim = Simulator()
        cluster = Cluster(sim, ClusterSpec(num_nodes=4))
        storage = _RecordingStorage()
        inj = FaultInjector(
            sim,
            cluster,
            plan,
            _NullHost(),
            storage=storage,
            default_storage_nodes=(1, 2, 3),
        )
        inj.start()
        sim.process(self._stopper(sim, inj, until), name="stopper")
        sim.run()
        return storage, inj

    @staticmethod
    def _stopper(sim, inj, until):
        yield sim.timeout(until)
        inj.stop()

    def test_storage_spec_without_host_rejected(self):
        sim = Simulator()
        cluster = Cluster(sim, ClusterSpec(num_nodes=4))
        plan = FaultPlan(specs=(DiskFailure(rate=0.1),))
        with pytest.raises(ValueError, match="storage"):
            FaultInjector(sim, cluster, plan, _NullHost())

    def test_disk_failures_match_analytic_twin(self):
        plan = FaultPlan(specs=(DiskFailure(rate=0.05),), seed=11)
        storage, inj = self._run(plan, until=100.0)
        injected = [
            (now, node) for kind, node, now in storage.calls if kind == "disk"
        ]
        expected = plan.disk_failure_times((1, 2, 3), horizon=100.0)
        assert sorted(injected) == pytest.approx(expected)
        assert inj.disk_failures_injected == len(expected)

    def test_decommission_fires_once_at_time(self):
        plan = FaultPlan(specs=(Decommission(node=2, at=7.5),))
        storage, inj = self._run(plan)
        assert storage.calls == [("decom", 2, 7.5)]
        assert inj.decommissions_injected == 1

    def test_corruptions_dispatch_with_rng(self):
        plan = FaultPlan(specs=(BlockCorruption(rate=0.1, nodes=(1,)),), seed=5)
        storage, inj = self._run(plan, until=60.0)
        kinds = {kind for kind, _, _ in storage.calls}
        assert kinds == {"corrupt"}
        assert inj.corruptions_injected == len(storage.calls)

    def test_spec_tuple_export(self):
        assert DiskFailure in STORAGE_FAULT_SPECS
        assert BlockCorruption in STORAGE_FAULT_SPECS
        assert Decommission in STORAGE_FAULT_SPECS
        assert FlowLossRate not in STORAGE_FAULT_SPECS


# -- layer isolation (the determinism contract in docs/FAULTS.md) -------------
class TestStorageStreamIsolation:
    """Attaching a *dormant* storage spec to a network-fault plan builds
    the whole storage machinery (replica map, read path, repair queue)
    but must not move a single byte of the run: every RNG substream is
    namespaced, so the export is bit-for-bit identical."""

    #: Never fires: a decommission aeons away plus a disk-failure window
    #: that opens long after any simulated job has ended.
    DORMANT = (
        Decommission(node=1, at=1e9),
        DiskFailure(rate=1e-4, start=1e8),
    )

    def test_hadoop_network_fault_export_unperturbed(self):
        import json

        from repro.hadoop.job import JAVASORT_PROFILE, JobSpec
        from repro.hadoop.simulation import run_hadoop_job
        from repro.util.units import MiB

        spec = JobSpec("sort", input_bytes=640 * MiB, profile=JAVASORT_PROFILE)
        net = FaultPlan(specs=(FlowLossRate(rate=0.2),), seed=2011)
        both = FaultPlan(specs=net.specs + self.DORMANT, seed=2011)
        a = run_hadoop_job(spec, seed=2011, fault_plan=net)
        b = run_hadoop_job(spec, seed=2011, fault_plan=both)
        assert json.dumps(a.to_dict(), sort_keys=True) == json.dumps(
            b.to_dict(), sort_keys=True
        )

    def test_mpid_network_fault_summary_unperturbed(self):
        from repro.hadoop.job import JAVASORT_PROFILE, JobSpec
        from repro.mrmpi import MrMpiConfig, run_mpid_job_under_net_faults
        from repro.util.units import MiB

        spec = JobSpec("sort", input_bytes=640 * MiB, profile=JAVASORT_PROFILE)
        cfg = MrMpiConfig(max_restarts=25)
        net = FaultPlan(specs=(FlowLossRate(rate=0.05),), seed=2011)
        both = FaultPlan(specs=net.specs + self.DORMANT, seed=2011)
        a = run_mpid_job_under_net_faults(spec, net, config=cfg)
        b = run_mpid_job_under_net_faults(spec, both, config=cfg)
        assert a.summary() == b.summary()
