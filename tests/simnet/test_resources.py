"""Tests for SlotPool, RateDevice (processor sharing), Store."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simnet.kernel import SimError, Simulator
from repro.simnet.resources import RateDevice, SlotPool, Store


class TestSlotPool:
    def test_grants_up_to_capacity_immediately(self):
        sim = Simulator()
        pool = SlotPool(sim, 3)
        grants = []

        def proc(sim, i):
            yield pool.acquire()
            grants.append((i, sim.now))

        for i in range(3):
            sim.process(proc(sim, i))
        sim.run()
        assert [t for _, t in grants] == [0.0, 0.0, 0.0]

    def test_fifo_wait_and_release(self):
        sim = Simulator()
        pool = SlotPool(sim, 1)
        order = []

        def holder(sim):
            yield pool.acquire()
            yield sim.timeout(5.0)
            pool.release()

        def waiter(sim, tag, delay):
            yield sim.timeout(delay)
            yield pool.acquire()
            order.append((tag, sim.now))
            pool.release()

        sim.process(holder(sim))
        sim.process(waiter(sim, "first", 1.0))
        sim.process(waiter(sim, "second", 2.0))
        sim.run()
        assert order == [("first", 5.0), ("second", 5.0)]

    def test_release_without_acquire_raises(self):
        sim = Simulator()
        pool = SlotPool(sim, 1)
        with pytest.raises(SimError):
            pool.release()

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            SlotPool(Simulator(), 0)

    def test_counters(self):
        sim = Simulator()
        pool = SlotPool(sim, 2)

        def proc(sim):
            yield pool.acquire()

        sim.process(proc(sim))
        sim.run()
        assert pool.in_use == 1
        assert pool.available == 1


class TestRateDevice:
    def test_single_job_takes_bytes_over_rate(self):
        sim = Simulator()
        disk = RateDevice(sim, rate=100.0)

        def proc(sim):
            yield disk.transfer(250.0)

        sim.process(proc(sim))
        assert sim.run() == pytest.approx(2.5)

    def test_two_equal_jobs_share_equally(self):
        sim = Simulator()
        disk = RateDevice(sim, rate=100.0)
        done = []

        def proc(sim, tag):
            yield disk.transfer(100.0)
            done.append((tag, sim.now))

        sim.process(proc(sim, "a"))
        sim.process(proc(sim, "b"))
        sim.run()
        # Both 100-byte jobs at 50 B/s each -> both finish at t=2.
        assert done == [("a", 2.0), ("b", 2.0)]

    def test_late_arrival_slows_first(self):
        sim = Simulator()
        disk = RateDevice(sim, rate=100.0)
        done = {}

        def first(sim):
            yield disk.transfer(100.0)
            done["first"] = sim.now

        def second(sim):
            yield sim.timeout(0.5)
            yield disk.transfer(100.0)
            done["second"] = sim.now

        sim.process(first(sim))
        sim.process(second(sim))
        sim.run()
        # first: 50 bytes alone (0.5 s), then shares -> 50 more at 50 B/s = 1 s.
        assert done["first"] == pytest.approx(1.5)
        # second: 50 bytes at 50 B/s while sharing (1 s), then 50 alone (0.5 s).
        assert done["second"] == pytest.approx(2.0)

    def test_zero_byte_transfer_completes_instantly(self):
        sim = Simulator()
        disk = RateDevice(sim, rate=10.0)
        ev = disk.transfer(0)
        assert ev.triggered and ev.ok

    def test_negative_rejected(self):
        sim = Simulator()
        disk = RateDevice(sim, rate=10.0)
        with pytest.raises(ValueError):
            disk.transfer(-5)
        with pytest.raises(ValueError):
            RateDevice(sim, rate=0)

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(st.floats(0, 10), st.floats(0.1, 500)),
            min_size=1,
            max_size=8,
        )
    )
    def test_conservation_of_work(self, jobs):
        """Total completion time >= total bytes / rate (work conservation)."""
        sim = Simulator()
        rate = 100.0
        disk = RateDevice(sim, rate=rate)

        def proc(sim, delay, size):
            yield sim.timeout(delay)
            yield disk.transfer(size)

        for delay, size in jobs:
            sim.process(proc(sim, delay, size))
        end = sim.run()
        total_bytes = sum(size for _, size in jobs)
        first_arrival = min(delay for delay, _ in jobs)
        # The device is work-conserving: it cannot finish all jobs before
        # first_arrival + total/rate, and being PS it finishes exactly then
        # when there is no idle gap.
        assert end >= first_arrival + total_bytes / rate - 1e-6

    def test_back_to_back_sequential_is_work_conserving(self):
        sim = Simulator()
        disk = RateDevice(sim, rate=100.0)

        def proc(sim):
            yield disk.transfer(100.0)
            yield disk.transfer(100.0)

        sim.process(proc(sim))
        assert sim.run() == pytest.approx(2.0)


class TestStore:
    def test_put_then_get(self):
        sim = Simulator()
        store = Store(sim)
        store.put("x")
        got = []

        def proc(sim):
            got.append((yield store.get()))

        sim.process(proc(sim))
        sim.run()
        assert got == ["x"]

    def test_get_blocks_until_put(self):
        sim = Simulator()
        store = Store(sim)
        got = []

        def getter(sim):
            got.append(((yield store.get()), sim.now))

        def putter(sim):
            yield sim.timeout(4.0)
            store.put("late")

        sim.process(getter(sim))
        sim.process(putter(sim))
        sim.run()
        assert got == [("late", 4.0)]

    def test_fifo_item_order(self):
        sim = Simulator()
        store = Store(sim)
        for i in range(5):
            store.put(i)
        got = []

        def proc(sim):
            for _ in range(5):
                got.append((yield store.get()))

        sim.process(proc(sim))
        sim.run()
        assert got == [0, 1, 2, 3, 4]

    def test_try_get(self):
        sim = Simulator()
        store = Store(sim)
        assert store.try_get() is None
        store.put(9)
        assert store.try_get() == 9
        assert len(store) == 0
