"""Utilization accounting tests for devices, links and the cluster report."""

import pytest

from repro.simnet.cluster import Cluster, ClusterSpec
from repro.simnet.kernel import Simulator
from repro.simnet.network import Network
from repro.simnet.resources import RateDevice


class TestDeviceUtilization:
    def test_fully_busy(self):
        sim = Simulator()
        disk = RateDevice(sim, rate=100.0)

        def proc(sim):
            yield disk.transfer(500.0)

        sim.process(proc(sim))
        elapsed = sim.run()
        assert disk.utilization(elapsed) == pytest.approx(1.0)
        assert disk.bytes_served == pytest.approx(500.0)
        assert disk.jobs_completed == 1

    def test_half_busy(self):
        sim = Simulator()
        disk = RateDevice(sim, rate=100.0)

        def proc(sim):
            yield sim.timeout(5.0)
            yield disk.transfer(500.0)

        sim.process(proc(sim))
        elapsed = sim.run()
        assert elapsed == pytest.approx(10.0)
        assert disk.utilization(elapsed) == pytest.approx(0.5)

    def test_shared_service_counts_all_bytes(self):
        sim = Simulator()
        disk = RateDevice(sim, rate=100.0)

        def proc(sim):
            yield disk.transfer(100.0)

        sim.process(proc(sim))
        sim.process(proc(sim))
        sim.run()
        assert disk.bytes_served == pytest.approx(200.0)
        assert disk.jobs_completed == 2

    def test_zero_elapsed(self):
        sim = Simulator()
        disk = RateDevice(sim, rate=10.0)
        assert disk.utilization(0.0) == 0.0


class TestLinkUtilization:
    def test_saturated_link(self):
        sim = Simulator()
        net = Network(sim)
        link = net.add_link("l", 100.0)

        def proc(sim):
            yield net.transfer((link,), 300.0)

        sim.process(proc(sim))
        elapsed = sim.run()
        assert link.utilization(elapsed) == pytest.approx(1.0)
        assert link.bytes_carried == pytest.approx(300.0)

    def test_capped_flow_underutilizes(self):
        sim = Simulator()
        net = Network(sim)
        link = net.add_link("l", 100.0)

        def proc(sim):
            yield net.transfer((link,), 100.0, rate_cap=10.0)

        sim.process(proc(sim))
        elapsed = sim.run()
        assert link.utilization(elapsed) == pytest.approx(0.1)
        assert link.busy_time == pytest.approx(elapsed)


class TestClusterReport:
    def test_report_structure(self):
        sim = Simulator()
        cluster = Cluster(sim, ClusterSpec(num_nodes=3, link_bandwidth=100.0))

        def proc(sim):
            yield cluster.send(0, 1, 100.0)
            yield cluster.node(1).disk_write(50.0)

        sim.process(proc(sim))
        elapsed = sim.run()
        report = cluster.utilization_report(elapsed)
        assert set(report) == {"node0", "node1", "node2"}
        assert report["node0"]["uplink"] > 0
        assert report["node1"]["downlink"] > 0
        assert report["node1"]["disk_bytes"] > 0
        assert report["node2"]["disk"] == 0.0
