"""Tests for the cluster builder and the paper testbed defaults."""

import pytest

from repro.simnet.cluster import Cluster, ClusterSpec, paper_cluster
from repro.simnet.kernel import Simulator
from repro.simnet.trace import Tracer
from repro.util.units import GiB, MiB


class TestSpec:
    def test_paper_defaults(self):
        spec = ClusterSpec()
        assert spec.num_nodes == 8
        assert spec.cores_per_node == 8
        assert spec.memory_bytes == 16 * GiB

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterSpec(num_nodes=0)
        with pytest.raises(ValueError):
            ClusterSpec(cores_per_node=0)
        with pytest.raises(ValueError):
            ClusterSpec(link_bandwidth=0)
        with pytest.raises(ValueError):
            ClusterSpec(link_latency=-1)


class TestCluster:
    def test_paper_cluster_shape(self):
        sim = Simulator()
        cluster = paper_cluster(sim)
        assert len(cluster) == 8
        assert cluster.node(3).name == "node3"
        assert cluster.node(0).cpus.capacity == 8

    def test_remote_send_uses_both_links(self):
        sim = Simulator()
        cluster = Cluster(
            sim, ClusterSpec(num_nodes=2, link_bandwidth=100.0, link_latency=0.0)
        )

        def proc(sim):
            yield cluster.send(0, 1, 500.0)

        sim.process(proc(sim))
        assert sim.run() == pytest.approx(5.0)

    def test_local_send_is_latency_only(self):
        sim = Simulator()
        cluster = Cluster(sim, ClusterSpec(num_nodes=2, link_bandwidth=100.0))

        def proc(sim):
            yield cluster.send(1, 1, 10 * GiB, extra_latency=0.125)

        sim.process(proc(sim))
        assert sim.run() == pytest.approx(0.125)

    def test_link_latency_charged_on_remote(self):
        sim = Simulator()
        spec = ClusterSpec(num_nodes=2, link_bandwidth=100.0, link_latency=0.5)
        cluster = Cluster(sim, spec)

        def proc(sim):
            yield cluster.send(0, 1, 100.0)

        sim.process(proc(sim))
        assert sim.run() == pytest.approx(1.5)

    def test_full_duplex_no_interference(self):
        """A->B and B->A simultaneously each get full bandwidth."""
        sim = Simulator()
        cluster = Cluster(
            sim, ClusterSpec(num_nodes=2, link_bandwidth=100.0, link_latency=0.0)
        )
        done = []

        def proc(sim, src, dst):
            yield cluster.send(src, dst, 100.0)
            done.append(sim.now)

        sim.process(proc(sim, 0, 1))
        sim.process(proc(sim, 1, 0))
        sim.run()
        assert done == pytest.approx([1.0, 1.0])

    def test_disk_io(self):
        sim = Simulator()
        cluster = Cluster(sim, ClusterSpec(num_nodes=1, disk_bandwidth=100.0))
        node = cluster.node(0)

        def proc(sim):
            yield node.disk_read(200.0)

        sim.process(proc(sim))
        assert sim.run() == pytest.approx(2.0)

    def test_random_io_pays_seek(self):
        sim = Simulator()
        spec = ClusterSpec(num_nodes=1, disk_bandwidth=100.0, disk_seek=0.5)
        cluster = Cluster(sim, spec)

        def proc(sim):
            yield cluster.node(0).disk_write(100.0, sequential=False)

        sim.process(proc(sim))
        assert sim.run() == pytest.approx(1.5)


class TestTracer:
    def test_record_and_filter(self):
        sim = Simulator()
        tracer = Tracer(sim)

        def proc(sim):
            tracer.record("task", "map0:start")
            yield sim.timeout(3.0)
            tracer.record("task", "map0:end")
            tracer.record("other", "noise")

        sim.process(proc(sim))
        sim.run()
        assert len(list(tracer.by_category("task"))) == 2
        assert tracer.spans("task") == {"map0": (0.0, 3.0)}

    def test_disabled_tracer_records_nothing(self):
        sim = Simulator()
        tracer = Tracer(sim)
        tracer.enabled = False
        tracer.record("x", "y")
        assert tracer.events == []
