"""Differential + property tests pinning the fast max-min solver.

The fast path (`Network._maxmin_rates_fast` / `_solve_component`) must
reproduce the reference solver **bit-for-bit** — same divisions, same
epsilon-tie choices, same floats — under arbitrary interleavings of flow
arrivals, departures, kills, link flaps, capacity changes and
partitions.  These tests drive seeded/hypothesis-generated op sequences
through a live simulation with the fast solver and, at every step,
re-derive all rates with the reference solver and compare exactly.

Max-min structural invariants (capacity respected, caps respected,
every uncapped-below-cap flow has a saturated bottleneck where it gets
a maximal share) are asserted on the same checkpoints.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simnet.kernel import Simulator
from repro.simnet.network import DEFAULT_SOLVER, Network, use_solver

NODES = 5
REL_TOL = 1e-6


def _build():
    sim = Simulator()
    net = Network(sim, solver="fast")
    ups, dns = [], []
    for n in range(NODES):
        # Deliberately non-uniform capacities: uniform ones hide
        # tie-breaking bugs because every order gives the same shares.
        ups.append(net.add_link(f"n{n}.up", 100e6 * (1 + 0.11 * n)))
        dns.append(net.add_link(f"n{n}.dn", 95e6 * (1 + 0.07 * n)))
    return sim, net, ups, dns


def _check_against_reference(net: Network) -> None:
    """Fast solver's standing rates == a from-scratch reference solve."""
    fast_rates = {f.seq: f.rate for f in net._flows}
    net._maxmin_rates_reference()
    ref_rates = {f.seq: f.rate for f in net._flows}
    assert fast_rates == ref_rates, (
        "fast solver diverged from reference: "
        f"{ {s: (fast_rates[s], ref_rates[s]) for s in fast_rates if fast_rates[s] != ref_rates[s]} }"
    )


def _check_maxmin_invariants(net: Network) -> None:
    links = {l for f in net._flows for l in f.path}
    loads = {l: sum(f.rate for f in l._flows) for l in links}
    for link, load in loads.items():
        assert load <= link.capacity * (1 + REL_TOL), (
            f"{link.name} over capacity: {load} > {link.capacity}"
        )
    for f in net._flows:
        assert f.rate <= f.rate_cap * (1 + REL_TOL), (
            f"flow #{f.seq} above its cap: {f.rate} > {f.rate_cap}"
        )
        if f.rate >= f.rate_cap * (1 - REL_TOL):
            continue  # cap-frozen: its bottleneck is the protocol, not a link
        # Below its cap: some path link must be saturated with this flow
        # taking a maximal share there (the max-min bottleneck property).
        has_bottleneck = False
        for link in f.path:
            saturated = loads[link] >= link.capacity * (1 - REL_TOL)
            maximal = all(
                f.rate >= other.rate * (1 - REL_TOL) for other in link._flows
            )
            if saturated and maximal:
                has_bottleneck = True
                break
        assert has_bottleneck, (
            f"flow #{f.seq} at {f.rate} (cap {f.rate_cap}) has no "
            f"saturated bottleneck on its path"
        )


def _apply_ops(ops) -> int:
    """Drive one op sequence; returns the number of checkpoints taken."""
    sim, net, ups, dns = _build()
    flows: list = []
    checks = 0

    def check():
        nonlocal checks
        _check_against_reference(net)
        _check_maxmin_invariants(net)
        checks += 1

    def driver():
        for op in ops:
            kind = op[0]
            if kind == "start":
                _, s, d, size, cap = op
                if s == d:
                    d = (d + 1) % NODES
                f = net.transfer_flow(
                    (ups[s], dns[d]),
                    size,
                    rate_cap=float("inf") if cap is None else cap,
                )
                f.done.defuse()  # kills are intentional here
                flows.append(f)
            elif kind == "kill":
                if flows:
                    net.fail_flow(flows[op[1] % len(flows)], reason="prop-kill")
            elif kind == "down":
                net.set_link_down(ups[op[1]])
            elif kind == "up":
                net.set_link_up(ups[op[1]])
            elif kind == "capacity":
                _, n, scale = op
                net.set_link_capacity(dns[n], 95e6 * scale)
            elif kind == "partition":
                cut = op[1]
                groups = {}
                for i in range(NODES):
                    groups[ups[i]] = 0 if i < cut else 1
                    groups[dns[i]] = 0 if i < cut else 1
                net.set_partition(groups)
            elif kind == "heal":
                net.clear_partition()
            elif kind == "wait":
                yield sim.timeout(op[1])
            check()
        # Let everything drain, checking at a few more quiesce points.
        while net._flows:
            yield sim.timeout(0.05)
            check()

    sim.process(driver(), name="diff-driver")
    sim.run()
    check()
    return checks


_node = st.integers(0, NODES - 1)
_op = st.one_of(
    st.tuples(
        st.just("start"),
        _node,
        _node,
        st.floats(1e3, 5e8),
        st.sampled_from([None, None, 8e5, 2.5e7, 6e7]),
    ),
    st.tuples(st.just("kill"), st.integers(0, 999)),
    st.tuples(st.just("down"), _node),
    st.tuples(st.just("up"), _node),
    st.tuples(st.just("capacity"), _node, st.floats(0.2, 2.5)),
    st.tuples(st.just("partition"), st.integers(1, NODES - 1)),
    st.tuples(st.just("heal")),
    st.tuples(st.just("wait"), st.floats(0.0, 0.4)),
)


@given(st.lists(_op, max_size=30))
@settings(max_examples=60)
def test_differential_random_ops(ops):
    _apply_ops(ops)


def _seeded_ops(seed: int, count: int):
    rng = random.Random(seed)
    ops = []
    for _ in range(count):
        roll = rng.random()
        if roll < 0.45:
            ops.append(
                (
                    "start",
                    rng.randrange(NODES),
                    rng.randrange(NODES),
                    10 ** rng.uniform(3, 8.6),
                    rng.choice([None, None, None, 8e5, 2.5e7, 6e7]),
                )
            )
        elif roll < 0.6:
            ops.append(("kill", rng.randrange(1000)))
        elif roll < 0.68:
            ops.append(("down", rng.randrange(NODES)))
        elif roll < 0.76:
            ops.append(("up", rng.randrange(NODES)))
        elif roll < 0.84:
            ops.append(("capacity", rng.randrange(NODES), rng.uniform(0.2, 2.5)))
        elif roll < 0.88:
            ops.append(("partition", rng.randrange(1, NODES)))
        elif roll < 0.92:
            ops.append(("heal",))
        else:
            ops.append(("wait", rng.uniform(0.0, 0.4)))
    return ops


@pytest.mark.parametrize("seed", [2011, 2012, 2013])
def test_differential_seeded_churn(seed):
    checks = _apply_ops(_seeded_ops(seed, 60))
    assert checks >= 60


@pytest.mark.slow
@pytest.mark.parametrize("seed", [7, 40, 1337])
def test_differential_seeded_churn_long(seed):
    """Long churn crosses the BFS population threshold both ways."""
    checks = _apply_ops(_seeded_ops(seed, 400))
    assert checks >= 400


def test_solver_flag_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Network(sim, solver="bogus")
    with pytest.raises(ValueError):
        with use_solver("bogus"):
            pass
    assert Network(sim, solver="reference").solver == "reference"
    assert DEFAULT_SOLVER in ("fast", "reference")


def test_use_solver_restores_default():
    sim = Simulator()
    before = Network(sim).solver
    with use_solver("reference"):
        assert Network(sim).solver == "reference"
    assert Network(sim).solver == before


def test_skip_counter_counts_clean_solves():
    sim, net, ups, dns = _build()
    f = net.transfer_flow((ups[0], dns[1]), 1e6)
    assert net.rate_recomputes == 1
    net._dirty.clear()
    net._maxmin_rates_fast()
    assert net.rate_skips == 1
    assert f.rate > 0
