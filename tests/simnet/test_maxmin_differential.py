"""Differential + property tests pinning the fast solver AND the
vectorized flow engine.

Two independent fast paths must reproduce the reference **bit-for-bit**
— same divisions, same epsilon-tie choices, same floats — under
arbitrary interleavings of flow arrivals, departures, kills, link
flaps, capacity changes and partitions:

* the fast max-min solver (`Network._maxmin_rates_fast`) against the
  from-scratch reference solver, checked synchronously at every op;
* the vectorized horizon-batching engine (dense slot arrays, deferred
  same-instant solve flush, pooled completion ticks) against the
  scalar reference engine, checked by replaying identical op sequences
  under both and comparing every checkpoint's rates and the final
  delivered-byte counters exactly.

Max-min structural invariants (capacity respected, caps respected,
every uncapped-below-cap flow has a saturated bottleneck where it gets
a maximal share) are asserted on the same checkpoints.  A final
property pins the kernel's shared-tick coalescing: a traced Hadoop run
streams a byte-identical trace store whether heartbeat timers coalesce
or not.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simnet import network as network_mod
from repro.simnet.engine import HAVE_NUMPY, use_engine, validate_engine
from repro.simnet.kernel import Simulator
from repro.simnet.network import DEFAULT_SOLVER, Network, use_solver

NODES = 5
REL_TOL = 1e-6

#: Engine sweep: the scalar oracle always runs; the vectorized engine
#: runs twice — once with the small-n scalar-loop slot path (the
#: default below ``_BULK_N`` flows) and once with ``_BULK_N`` pinned to
#: 1 so every slot op takes the whole-array numpy branch.
ENGINE_CASES = [
    pytest.param("reference", None, id="ref-engine"),
    pytest.param("vectorized", None, id="vec-engine"),
    pytest.param(
        "vectorized",
        1,
        id="vec-engine-bulk",
        marks=pytest.mark.skipif(not HAVE_NUMPY, reason="needs numpy"),
    ),
]


def _build(engine: str = "vectorized"):
    sim = Simulator()
    net = Network(sim, solver="fast", engine=engine)
    ups, dns = [], []
    for n in range(NODES):
        # Deliberately non-uniform capacities: uniform ones hide
        # tie-breaking bugs because every order gives the same shares.
        ups.append(net.add_link(f"n{n}.up", 100e6 * (1 + 0.11 * n)))
        dns.append(net.add_link(f"n{n}.dn", 95e6 * (1 + 0.07 * n)))
    return sim, net, ups, dns


def _check_against_reference(net: Network) -> None:
    """Fast solver's standing rates == a from-scratch reference solve."""
    fast_rates = {f.seq: f.rate for f in net._flows}
    net._maxmin_rates_reference()
    ref_rates = {f.seq: f.rate for f in net._flows}
    assert fast_rates == ref_rates, (
        "fast solver diverged from reference: "
        f"{ {s: (fast_rates[s], ref_rates[s]) for s in fast_rates if fast_rates[s] != ref_rates[s]} }"
    )


def _check_maxmin_invariants(net: Network) -> None:
    links = {l for f in net._flows for l in f.path}
    loads = {l: sum(f.rate for f in l._flows) for l in links}
    for link, load in loads.items():
        assert load <= link.capacity * (1 + REL_TOL), (
            f"{link.name} over capacity: {load} > {link.capacity}"
        )
    for f in net._flows:
        assert f.rate <= f.rate_cap * (1 + REL_TOL), (
            f"flow #{f.seq} above its cap: {f.rate} > {f.rate_cap}"
        )
        if f.rate >= f.rate_cap * (1 - REL_TOL):
            continue  # cap-frozen: its bottleneck is the protocol, not a link
        # Below its cap: some path link must be saturated with this flow
        # taking a maximal share there (the max-min bottleneck property).
        has_bottleneck = False
        for link in f.path:
            saturated = loads[link] >= link.capacity * (1 - REL_TOL)
            maximal = all(
                f.rate >= other.rate * (1 - REL_TOL) for other in link._flows
            )
            if saturated and maximal:
                has_bottleneck = True
                break
        assert has_bottleneck, (
            f"flow #{f.seq} at {f.rate} (cap {f.rate_cap}) has no "
            f"saturated bottleneck on its path"
        )


def _apply_ops(ops, engine: str = "vectorized", bulk_n=None):
    """Drive one op sequence under ``engine``.

    Returns ``(checkpoints, rate_log, bytes_delivered)`` where
    ``rate_log`` records ``(sim.now, {flow_seq: rate})`` at every
    checkpoint — the exact-comparison payload for cross-engine sweeps.
    ``bulk_n`` temporarily pins ``network._BULK_N`` (1 forces the numpy
    whole-array branch even at test-sized flow counts).
    """
    saved_bulk = network_mod._BULK_N
    if bulk_n is not None:
        network_mod._BULK_N = bulk_n
    try:
        return _apply_ops_inner(ops, engine)
    finally:
        network_mod._BULK_N = saved_bulk


def _apply_ops_inner(ops, engine: str):
    sim, net, ups, dns = _build(engine)
    flows: list = []
    checks = 0
    rate_log: list = []

    def check():
        nonlocal checks
        # The vectorized engine batches same-instant membership churn
        # into one deferred solve; force it now so standing rates are
        # inspectable synchronously (a timeline no-op — see the hook).
        net._settle_pending()
        rate_log.append((sim.now, {f.seq: f.rate for f in net._flows}))
        _check_against_reference(net)
        _check_maxmin_invariants(net)
        checks += 1

    def driver():
        for op in ops:
            kind = op[0]
            if kind == "start":
                _, s, d, size, cap = op
                if s == d:
                    d = (d + 1) % NODES
                f = net.transfer_flow(
                    (ups[s], dns[d]),
                    size,
                    rate_cap=float("inf") if cap is None else cap,
                )
                f.done.defuse()  # kills are intentional here
                flows.append(f)
            elif kind == "kill":
                if flows:
                    net.fail_flow(flows[op[1] % len(flows)], reason="prop-kill")
            elif kind == "down":
                net.set_link_down(ups[op[1]])
            elif kind == "up":
                net.set_link_up(ups[op[1]])
            elif kind == "capacity":
                _, n, scale = op
                net.set_link_capacity(dns[n], 95e6 * scale)
            elif kind == "partition":
                cut = op[1]
                groups = {}
                for i in range(NODES):
                    groups[ups[i]] = 0 if i < cut else 1
                    groups[dns[i]] = 0 if i < cut else 1
                net.set_partition(groups)
            elif kind == "heal":
                net.clear_partition()
            elif kind == "wait":
                yield sim.timeout(op[1])
            check()
        # Let everything drain, checking at a few more quiesce points.
        while net._flows:
            yield sim.timeout(0.05)
            check()

    sim.process(driver(), name="diff-driver")
    sim.run()
    check()
    return checks, rate_log, net.bytes_delivered


_node = st.integers(0, NODES - 1)
_op = st.one_of(
    st.tuples(
        st.just("start"),
        _node,
        _node,
        st.floats(1e3, 5e8),
        st.sampled_from([None, None, 8e5, 2.5e7, 6e7]),
    ),
    st.tuples(st.just("kill"), st.integers(0, 999)),
    st.tuples(st.just("down"), _node),
    st.tuples(st.just("up"), _node),
    st.tuples(st.just("capacity"), _node, st.floats(0.2, 2.5)),
    st.tuples(st.just("partition"), st.integers(1, NODES - 1)),
    st.tuples(st.just("heal")),
    st.tuples(st.just("wait"), st.floats(0.0, 0.4)),
)


@given(st.lists(_op, max_size=30))
@settings(max_examples=40)
def test_differential_random_ops(ops):
    """Hypothesis churn, swept across engines AND solvers.

    The scalar run is the oracle: every vectorized run — fast or
    reference solver, scalar-loop or forced-numpy slot path — must
    reproduce its checkpoint rates and delivered bytes *exactly* (no
    tolerance: same IEEE operations, same results).
    """
    _, ref_log, ref_bytes = _apply_ops(ops, engine="reference")
    sweeps = [("vectorized", None)]
    if HAVE_NUMPY:
        sweeps.append(("vectorized", 1))
    for engine, bulk_n in sweeps:
        for solver in ("fast", "reference"):
            with use_solver(solver):
                _, log, nbytes = _apply_ops(ops, engine=engine, bulk_n=bulk_n)
            assert log == ref_log, (
                f"engine={engine} solver={solver} bulk_n={bulk_n} "
                "diverged from the reference engine"
            )
            assert nbytes == ref_bytes


def _seeded_ops(seed: int, count: int):
    rng = random.Random(seed)
    ops = []
    for _ in range(count):
        roll = rng.random()
        if roll < 0.45:
            ops.append(
                (
                    "start",
                    rng.randrange(NODES),
                    rng.randrange(NODES),
                    10 ** rng.uniform(3, 8.6),
                    rng.choice([None, None, None, 8e5, 2.5e7, 6e7]),
                )
            )
        elif roll < 0.6:
            ops.append(("kill", rng.randrange(1000)))
        elif roll < 0.68:
            ops.append(("down", rng.randrange(NODES)))
        elif roll < 0.76:
            ops.append(("up", rng.randrange(NODES)))
        elif roll < 0.84:
            ops.append(("capacity", rng.randrange(NODES), rng.uniform(0.2, 2.5)))
        elif roll < 0.88:
            ops.append(("partition", rng.randrange(1, NODES)))
        elif roll < 0.92:
            ops.append(("heal",))
        else:
            ops.append(("wait", rng.uniform(0.0, 0.4)))
    return ops


@pytest.mark.parametrize("engine,bulk_n", ENGINE_CASES)
@pytest.mark.parametrize("seed", [2011, 2012, 2013])
def test_differential_seeded_churn(seed, engine, bulk_n):
    checks, _, _ = _apply_ops(_seeded_ops(seed, 60), engine=engine, bulk_n=bulk_n)
    assert checks >= 60


@pytest.mark.parametrize("seed", [2011, 2013])
def test_cross_engine_rates_and_bytes_exact(seed):
    """Seeded churn: vectorized checkpoints == scalar checkpoints, exactly."""
    ops = _seeded_ops(seed, 80)
    _, ref_log, ref_bytes = _apply_ops(ops, engine="reference")
    _, vec_log, vec_bytes = _apply_ops(ops, engine="vectorized")
    assert vec_log == ref_log
    assert vec_bytes == ref_bytes


@pytest.mark.slow
@pytest.mark.parametrize("engine,bulk_n", ENGINE_CASES)
@pytest.mark.parametrize("seed", [7, 40, 1337])
def test_differential_seeded_churn_long(seed, engine, bulk_n):
    """Long churn crosses the BFS population threshold both ways."""
    checks, _, _ = _apply_ops(
        _seeded_ops(seed, 400), engine=engine, bulk_n=bulk_n
    )
    assert checks >= 400


def test_solver_flag_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Network(sim, solver="bogus")
    with pytest.raises(ValueError):
        with use_solver("bogus"):
            pass
    assert Network(sim, solver="reference").solver == "reference"
    assert DEFAULT_SOLVER in ("fast", "reference")


def test_engine_flag_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Network(sim, engine="bogus")
    with pytest.raises(ValueError):
        validate_engine("bogus")
    with pytest.raises(ValueError):
        with use_engine("bogus"):
            pass
    assert Network(sim, engine="reference").engine == "reference"


def test_use_solver_restores_default():
    sim = Simulator()
    before = Network(sim).solver
    with use_solver("reference"):
        assert Network(sim).solver == "reference"
    assert Network(sim).solver == before


def test_use_engine_restores_default():
    sim = Simulator()
    before = Network(sim).engine
    with use_engine("reference"):
        assert Network(sim).engine == "reference"
    assert Network(sim).engine == before


def test_skip_counter_counts_clean_solves():
    # Pinned to the reference engine: its solves are synchronous, so
    # the counters are inspectable right after the call.
    sim, net, ups, dns = _build(engine="reference")
    f = net.transfer_flow((ups[0], dns[1]), 1e6)
    assert net.rate_recomputes == 1
    net._dirty.clear()
    net._maxmin_rates_fast()
    assert net.rate_skips == 1
    assert f.rate > 0


def test_vectorized_defers_solve_to_one_per_instant():
    """Same-instant churn under the vectorized engine costs ONE solve."""
    sim, net, ups, dns = _build(engine="vectorized")
    for i in range(6):
        net.transfer_flow((ups[i % NODES], dns[(i + 1) % NODES]), 1e6)
    # All six arrivals landed at t=0; the solve is still queued.
    assert net.rate_recomputes == 0
    net._settle_pending()
    assert net.rate_recomputes == 1
    # Settling consumed the pending flush; settling again is a no-op.
    net._settle_pending()
    assert net.rate_recomputes == 1


# -- shared-tick coalescing vs streamed trace stores -------------------------


def _streamed_hadoop_store(tmp_path, name: str, coalesce: bool) -> bytes:
    from repro.hadoop import HadoopConfig, JobSpec, WORDCOUNT_PROFILE
    from repro.hadoop.simulation import HadoopSimulation
    from repro.util.units import MiB

    saved = Simulator.tick
    if not coalesce:

        def unshared_tick(self, delay, cb=None, *, shared=False):
            return saved(self, delay, cb, shared=False)

        Simulator.tick = unshared_tick
    try:
        spec = JobSpec(
            name="coalesce",
            input_bytes=96 * MiB,
            profile=WORDCOUNT_PROFILE,
            num_reduce_tasks=1,
        )
        hsim = HadoopSimulation(spec=spec, config=HadoopConfig(), observe=True)
        path = tmp_path / name
        with hsim.obs.stream_to(path, system="hadoop"):
            hsim.run()
        return path.read_bytes()
    finally:
        Simulator.tick = saved


def test_heartbeat_coalescing_keeps_trace_store_byte_identical(tmp_path):
    """Shared-tick merging is a pure allocation optimization.

    Heartbeat/periodic timers that coalesce into one shared tick must
    dispatch in exactly the order separate ticks would have (append
    order == seq order), so a fully traced run streams a byte-identical
    store with coalescing forced off.
    """
    merged = _streamed_hadoop_store(tmp_path, "merged.jsonl", coalesce=True)
    split = _streamed_hadoop_store(tmp_path, "split.jsonl", coalesce=False)
    assert merged == split
