"""Per-flow rate caps in the max-min allocator."""

import pytest

from repro.simnet.kernel import Simulator
from repro.simnet.network import Network


class TestRateCaps:
    def test_capped_flow_takes_cap_time(self):
        sim = Simulator()
        net = Network(sim)
        link = net.add_link("l", 100.0)

        def proc(sim):
            yield net.transfer((link,), 100.0, rate_cap=10.0)

        sim.process(proc(sim))
        assert sim.run() == pytest.approx(10.0)

    def test_capped_flow_releases_capacity_to_others(self):
        sim = Simulator()
        net = Network(sim)
        link = net.add_link("l", 100.0)
        done = {}

        def proc(sim, tag, cap):
            yield net.transfer((link,), 100.0, rate_cap=cap)
            done[tag] = sim.now

        sim.process(proc(sim, "capped", 10.0))
        sim.process(proc(sim, "free", float("inf")))
        sim.run()
        # Capped at 10 B/s -> t=10; the free flow gets the other 90 B/s
        # and finishes at 100/90 = 1.11s.
        assert done["capped"] == pytest.approx(10.0)
        assert done["free"] == pytest.approx(100.0 / 90.0)

    def test_cap_above_link_is_harmless(self):
        sim = Simulator()
        net = Network(sim)
        link = net.add_link("l", 100.0)

        def proc(sim):
            yield net.transfer((link,), 100.0, rate_cap=1e9)

        sim.process(proc(sim))
        assert sim.run() == pytest.approx(1.0)

    def test_local_transfer_with_cap_takes_time(self):
        sim = Simulator()
        net = Network(sim)

        def proc(sim):
            yield net.transfer((), 50.0, latency=0.5, rate_cap=10.0)

        sim.process(proc(sim))
        assert sim.run() == pytest.approx(0.5 + 5.0)

    def test_local_transfer_uncapped_instant(self):
        sim = Simulator()
        net = Network(sim)

        def proc(sim):
            yield net.transfer((), 1e12, latency=0.25)

        sim.process(proc(sim))
        assert sim.run() == pytest.approx(0.25)

    def test_cap_validation(self):
        sim = Simulator()
        net = Network(sim)
        link = net.add_link("l", 100.0)
        with pytest.raises(ValueError, match="rate cap"):
            net.transfer((link,), 10.0, rate_cap=0)

    def test_many_capped_flows_fill_link(self):
        """10 flows capped at 20 B/s on a 100 B/s link: aggregate limited
        by the link, max-min still fair."""
        sim = Simulator()
        net = Network(sim)
        link = net.add_link("l", 100.0)
        done = []

        def proc(sim):
            yield net.transfer((link,), 100.0, rate_cap=20.0)
            done.append(sim.now)

        for _ in range(10):
            sim.process(proc(sim))
        sim.run()
        # 10 flows want 20 each = 200 > 100: link-fair share is 10 B/s.
        assert done == pytest.approx([10.0] * 10)
