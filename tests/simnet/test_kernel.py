"""Unit + property tests for the DES kernel."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.simnet.kernel import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    SimError,
    Simulator,
    Timeout,
)


class TestTimeAdvance:
    def test_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_single_timeout(self):
        sim = Simulator()

        def proc(sim):
            yield sim.timeout(2.5)

        sim.process(proc(sim))
        assert sim.run() == 2.5

    def test_sequential_timeouts_accumulate(self):
        sim = Simulator()
        times = []

        def proc(sim):
            yield sim.timeout(1.0)
            times.append(sim.now)
            yield sim.timeout(0.5)
            times.append(sim.now)

        sim.process(proc(sim))
        sim.run()
        assert times == [1.0, 1.5]

    def test_run_until_stops_clock(self):
        sim = Simulator()

        def proc(sim):
            yield sim.timeout(10.0)

        sim.process(proc(sim))
        assert sim.run(until=4.0) == 4.0
        assert sim.peek() == 10.0

    @given(st.lists(st.floats(0, 100), min_size=1, max_size=20))
    def test_time_never_decreases(self, delays):
        sim = Simulator()
        seen = []

        def proc(sim, d):
            yield sim.timeout(d)
            seen.append(sim.now)

        for d in delays:
            sim.process(proc(sim, d))
        sim.run()
        assert seen == sorted(seen)
        assert len(seen) == len(delays)

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.timeout(-1)


class TestFifoOrdering:
    def test_equal_time_events_fire_in_schedule_order(self):
        sim = Simulator()
        order = []

        def proc(sim, tag):
            yield sim.timeout(1.0)
            order.append(tag)

        for tag in range(10):
            sim.process(proc(sim, tag))
        sim.run()
        assert order == list(range(10))


class TestEvents:
    def test_manual_succeed_delivers_value(self):
        sim = Simulator()
        ev = sim.event()
        got = []

        def waiter(sim):
            got.append((yield ev))

        def firer(sim):
            yield sim.timeout(3.0)
            ev.succeed("payload")

        sim.process(waiter(sim))
        sim.process(firer(sim))
        sim.run()
        assert got == ["payload"]

    def test_double_trigger_raises(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed(1)
        with pytest.raises(SimError):
            ev.succeed(2)

    def test_value_before_trigger_raises(self):
        sim = Simulator()
        with pytest.raises(SimError):
            _ = sim.event().value

    def test_fail_propagates_into_waiter(self):
        sim = Simulator()
        ev = sim.event()
        caught = []

        def waiter(sim):
            try:
                yield ev
            except ValueError as exc:
                caught.append(str(exc))

        def firer(sim):
            yield sim.timeout(1.0)
            ev.fail(ValueError("boom"))

        sim.process(waiter(sim))
        sim.process(firer(sim))
        sim.run()
        assert caught == ["boom"]

    def test_unhandled_failure_raises_at_run(self):
        sim = Simulator()
        ev = sim.event()

        def firer(sim):
            yield sim.timeout(1.0)
            ev.fail(RuntimeError("lost failure"))

        sim.process(firer(sim))
        with pytest.raises(RuntimeError, match="lost failure"):
            sim.run()

    def test_fail_requires_exception(self):
        sim = Simulator()
        with pytest.raises(TypeError):
            sim.event().fail("not an exception")

    def test_yield_already_processed_event(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed(41)
        got = []

        def late(sim):
            yield sim.timeout(5.0)
            got.append((yield ev) + 1)

        sim.process(late(sim))
        sim.run()
        assert got == [42]


class TestProcesses:
    def test_process_is_event_with_return_value(self):
        sim = Simulator()

        def child(sim):
            yield sim.timeout(2.0)
            return "result"

        def parent(sim):
            value = yield sim.process(child(sim))
            return value + "!"

        p = sim.process(parent(sim))
        sim.run()
        assert p.value == "result!"

    def test_process_exception_fails_parent(self):
        sim = Simulator()

        def child(sim):
            yield sim.timeout(1.0)
            raise KeyError("inner")

        def parent(sim):
            with pytest.raises(KeyError):
                yield sim.process(child(sim))
            return "recovered"

        p = sim.process(parent(sim))
        sim.run()
        assert p.value == "recovered"

    def test_unwaited_process_exception_surfaces(self):
        sim = Simulator()

        def bad(sim):
            yield sim.timeout(1.0)
            raise RuntimeError("unobserved crash")

        sim.process(bad(sim))
        with pytest.raises(RuntimeError, match="unobserved crash"):
            sim.run()

    def test_yielding_non_event_is_error(self):
        sim = Simulator()

        def bad(sim):
            yield 42

        sim.process(bad(sim))
        with pytest.raises(SimError, match="only yield Event"):
            sim.run()

    def test_non_generator_rejected(self):
        sim = Simulator()
        with pytest.raises(TypeError, match="generator"):
            sim.process(lambda: None)

    def test_interrupt_wakes_sleeper(self):
        sim = Simulator()
        log = []

        def sleeper(sim):
            try:
                yield sim.timeout(100.0)
            except Interrupt as intr:
                log.append((sim.now, intr.cause))

        def poker(sim, target):
            yield sim.timeout(2.0)
            target.interrupt("wake up")

        target = sim.process(sleeper(sim))
        sim.process(poker(sim, target))
        sim.run()
        assert log == [(2.0, "wake up")]

    def test_interrupt_finished_process_raises(self):
        sim = Simulator()

        def quick(sim):
            yield sim.timeout(0.1)

        p = sim.process(quick(sim))
        sim.run()
        with pytest.raises(SimError):
            p.interrupt()


class TestConditions:
    def test_all_of_waits_for_slowest(self):
        sim = Simulator()

        def proc(sim):
            result = yield sim.all_of([sim.timeout(1, "a"), sim.timeout(3, "b")])
            return (sim.now, result)

        p = sim.process(proc(sim))
        sim.run()
        assert p.value == (3.0, ["a", "b"])

    def test_any_of_fires_on_fastest(self):
        sim = Simulator()

        def proc(sim):
            result = yield sim.any_of([sim.timeout(5, "slow"), sim.timeout(1, "fast")])
            return (sim.now, result)

        p = sim.process(proc(sim))
        sim.run()
        assert p.value == (1.0, "fast")

    def test_all_of_propagates_failure(self):
        sim = Simulator()
        ev = sim.event()

        def proc(sim):
            try:
                yield sim.all_of([sim.timeout(1), ev])
            except ValueError:
                return "caught"

        def firer(sim):
            yield sim.timeout(0.5)
            ev.fail(ValueError("bad"))

        p = sim.process(proc(sim))
        sim.process(firer(sim))
        sim.run()
        assert p.value == "caught"

    def test_mixed_simulators_rejected(self):
        sim1, sim2 = Simulator(), Simulator()
        with pytest.raises(SimError):
            AllOf(sim1, [sim1.event(), sim2.event()])

    def test_all_of_with_already_fired_events(self):
        sim = Simulator()
        done = sim.event()
        done.succeed("pre")

        def proc(sim):
            result = yield sim.all_of([done, sim.timeout(2, "post")])
            return result

        p = sim.process(proc(sim))
        sim.run()
        assert p.value == ["pre", "post"]


class TestStepPeek:
    def test_step_and_peek(self):
        sim = Simulator()

        def proc(sim):
            yield sim.timeout(1.0)
            yield sim.timeout(1.0)

        sim.process(proc(sim))
        assert sim.peek() == 0.0  # bootstrap event
        steps = 0
        while sim.step():
            steps += 1
        assert steps >= 3
        assert sim.peek() is None
