"""The simulator self-profiler contract.

Three properties the bench harness depends on (see
:mod:`repro.simnet.profiler`):

* attribution — event labels land in the right bins, counts and wall
  seconds accumulate;
* zero cost when off — a run without a profiler attached exports
  byte-identically to the pre-profiler code path (same seed, profiled
  or not, the *simulation* is untouched);
* determinism — same-seed profiled runs agree on every event count,
  and ``deterministic_view`` strips exactly the wall-clock fields so
  the remainder diffs byte-identical in CI.
"""

import json

from repro.simnet.profiler import (
    BINS,
    SelfProfiler,
    categorize,
    deterministic_view,
)


def _wordcount_export(seed: int, profiler=None) -> str:
    from repro.hadoop import HadoopConfig, JobSpec, WORDCOUNT_PROFILE
    from repro.hadoop.simulation import HadoopSimulation
    from repro.simnet.cluster import ClusterSpec

    hsim = HadoopSimulation(
        spec=JobSpec("prof", input_bytes=24 * 2**20, profile=WORDCOUNT_PROFILE),
        config=HadoopConfig(),
        cluster_spec=ClusterSpec(num_nodes=4),
        seed=seed,
    )
    if profiler is not None:
        hsim.sim.attach_profiler(profiler)
    metrics = hsim.run()
    return json.dumps(metrics.to_dict(), sort_keys=True)


class TestCategorize:
    def test_rules_hit_their_bins(self):
        assert categorize("TaskTracker.heartbeat") == "heartbeat"
        assert categorize("map3") == "task"
        assert categorize("red0") == "task"
        assert categorize("NetworkModel.solve") == "flow"
        assert categorize("FairScheduler.dispatch") == "scheduler"
        assert categorize("JobMonitor.poll") == "scheduler"

    def test_unknown_labels_fall_through_to_kernel(self):
        assert categorize("frobnicate") == "kernel"
        assert categorize("") == "kernel"

    def test_every_rule_targets_a_known_bin(self):
        from repro.simnet.profiler import _RULES

        for _needle, bin_name in _RULES:
            assert bin_name in BINS


class TestSelfProfiler:
    def test_record_accumulates_events_and_seconds(self):
        prof = SelfProfiler(leg="unit")
        prof.record("map1", 0.5)
        prof.record("map2", 0.25)
        prof.record("mystery", 1.0)
        snap = prof.snapshot()
        assert snap["leg"] == "unit"
        assert snap["bins"]["task"] == {"events": 2, "wall_seconds": 0.75}
        assert snap["bins"]["kernel"] == {"events": 1, "wall_seconds": 1.0}
        assert snap["total"] == {"events": 3, "wall_seconds": 1.75}

    def test_record_overhead_adds_seconds_without_events(self):
        prof = SelfProfiler()
        prof.record_overhead("timer-wheel", 0.125)
        snap = prof.snapshot()
        assert snap["bins"]["timer-wheel"] == {
            "events": 0,
            "wall_seconds": 0.125,
        }

    def test_snapshot_lists_every_bin(self):
        snap = SelfProfiler().snapshot()
        assert tuple(snap["bins"]) == BINS

    def test_injected_clock_is_used_by_the_kernel(self):
        ticks = iter(range(1000))
        prof = SelfProfiler(clock=lambda: float(next(ticks)))
        assert prof.clock() == 0.0
        assert prof.clock() == 1.0


class TestDeterministicView:
    def test_strips_wall_seconds_recursively(self):
        prof = SelfProfiler(leg="x")
        prof.record("map1", 3.0)
        view = deterministic_view({"legs": {"x": prof.snapshot()}})
        leg = view["legs"]["x"]
        assert leg["bins"]["task"] == {"events": 1}
        assert leg["total"] == {"events": 1}
        assert "wall_seconds" not in json.dumps(view)

    def test_non_dict_payloads_pass_through(self):
        assert deterministic_view([1, "a", None]) == [1, "a", None]


class TestKernelIntegration:
    def test_profiled_run_does_not_perturb_the_simulation(self):
        baseline = _wordcount_export(7)
        prof = SelfProfiler()
        profiled = _wordcount_export(7, profiler=prof)
        assert profiled == baseline
        assert prof.snapshot()["total"]["events"] > 0

    def test_same_seed_profiles_agree_on_event_counts(self):
        a, b = SelfProfiler(), SelfProfiler()
        _wordcount_export(7, profiler=a)
        _wordcount_export(7, profiler=b)
        assert deterministic_view(a.snapshot()) == deterministic_view(
            b.snapshot()
        )

    def test_detach_restores_the_unprofiled_path(self):
        from repro.simnet.kernel import Simulator

        sim = Simulator()
        prof = SelfProfiler()
        sim.attach_profiler(prof)
        sim.detach_profiler()
        sim.tick(1.0, lambda ev: None)
        sim.run()
        assert prof.snapshot()["total"]["events"] == 0

    def test_heartbeats_dominate_a_hadoop_run(self):
        prof = SelfProfiler()
        _wordcount_export(7, profiler=prof)
        bins = prof.snapshot()["bins"]
        assert bins["heartbeat"]["events"] == max(
            b["events"] for b in bins.values()
        )
