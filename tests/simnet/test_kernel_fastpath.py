"""Tests for the kernel fast paths: lazy cancellation and the timer wheel.

Covers the two engine-level optimisations behind ``python -m repro
bench``:

* **tombstone cancellation** — ``Event.cancel()`` must keep drain
  semantics (a popped tombstone still advances the clock) while
  dispatching nothing, and yielding on a cancelled event must be a hard
  error, not a silent hang;
* **timer wheel** — ``Simulator(timer_slot=...)`` must fire every event
  at exactly the same time and in exactly the same order as the pure
  heap, including the earlier-slot hazard (a short timer scheduled while
  a far-future bucket is already loaded as the wheel head).

Plus the regression for the stale-completion-timer bug: a flow killed
and replaced in the same timestep must not be finished early (or
crashed) by the dead flow's still-queued timer.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simnet.kernel import SimError, Simulator, _TimerWheel
from repro.simnet.network import FlowFailed, Network

# ---------------------------------------------------------------------------
# lazy cancellation
# ---------------------------------------------------------------------------


def test_cancelled_timer_still_advances_clock():
    sim = Simulator()
    fired = []
    keep = sim.timeout(2.0)
    keep.callbacks.append(lambda ev: fired.append(sim.now))
    sim.timeout(5.0).cancel()
    assert sim.run() == 5.0  # tombstone drained the clock to 5.0
    assert fired == [2.0]
    assert sim.events_cancelled == 1
    assert sim.events_dispatched == 1  # the tombstone dispatched nothing


def test_cancel_after_dispatch_is_noop():
    sim = Simulator()
    t = sim.timeout(1.0)
    sim.run()
    t.cancel()
    assert not t.cancelled  # already processed: nothing to tombstone


def test_yielding_cancelled_event_is_an_error():
    sim = Simulator()
    t = sim.timeout(1.0)
    t.cancel()

    def proc():
        yield t

    sim.process(proc(), name="bad-waiter")
    with pytest.raises(SimError, match="cancelled"):
        sim.run()


def test_condition_over_cancelled_event_is_an_error():
    sim = Simulator()
    t = sim.timeout(1.0)
    t.cancel()
    with pytest.raises(SimError, match="cancelled"):
        sim.any_of([t, sim.timeout(2.0)])
    with pytest.raises(SimError, match="cancelled"):
        sim.all_of([t])


def test_cancel_storm_keeps_survivors_ordering():
    sim = Simulator()
    rng = random.Random(11)
    fired = []
    timers = []
    for i in range(300):
        t = sim.timeout(rng.uniform(0.0, 30.0), value=i)
        t.callbacks.append(lambda ev: fired.append(ev.value))
        timers.append(t)
    survivors = [t for i, t in enumerate(timers) if i % 3 == 0]
    for i, t in enumerate(timers):
        if i % 3:
            t.cancel()
    sim.run()
    expect = [
        t._value for t in sorted(survivors, key=lambda t: (t.delay, t._value))
    ]
    assert fired == expect
    assert sim.events_cancelled == 200
    assert sim.events_dispatched == 100


# ---------------------------------------------------------------------------
# timer wheel == heap, exactly
# ---------------------------------------------------------------------------


def _storm_log(timer_slot, seed, n=150):
    """Seeded timer storm with follow-up scheduling and cancels."""
    sim = Simulator(timer_slot=timer_slot)
    rng = random.Random(seed)
    log = []

    def fire(ev):
        log.append((sim.now, ev.value))
        if ev.value < n:  # follow-ups, some very short (earlier-slot hazard)
            t = sim.timeout(
                rng.choice([0.001, 0.4, 3.0, 45.0]), value=ev.value + n
            )
            t.callbacks.append(fire)

    timers = []
    for i in range(n):
        t = sim.timeout(rng.uniform(0.0, 60.0), value=i)
        t.callbacks.append(fire)
        timers.append(t)
    for i, t in enumerate(timers):
        if i % 7 == 3:
            t.cancel()
    end = sim.run()
    return log, end


@pytest.mark.parametrize("width", [0.05, 1.0, 7.5, 100.0])
def test_wheel_matches_heap_storm(width):
    heap_log, heap_end = _storm_log(None, seed=2011)
    wheel_log, wheel_end = _storm_log(width, seed=2011)
    assert wheel_log == heap_log  # same floats, same order
    assert wheel_end == heap_end


@given(
    delays=st.lists(
        st.floats(0.0, 100.0, allow_nan=False), min_size=1, max_size=60
    ),
    width=st.floats(0.05, 25.0, allow_nan=False),
)
@settings(max_examples=80)
def test_wheel_matches_heap_static(delays, width):
    logs = []
    for slot in (None, width):
        sim = Simulator(timer_slot=slot)
        log = []
        for i, d in enumerate(delays):
            sim.timeout(d, value=i).callbacks.append(
                lambda ev: log.append((sim.now, ev.value))
            )
        sim.run()
        logs.append(log)
    assert logs[0] == logs[1]


def test_wheel_earlier_slot_demotes_head():
    # Load a far-future bucket as the wheel head (via peek on the first
    # pop), then schedule an earlier timer from a heap event's callback:
    # the wheel must demote the loaded head and fire in global order.
    sim = Simulator(timer_slot=10.0)
    log = []

    def fire(ev):
        log.append((sim.now, ev.value))

    for when, val in ((55.0, "a"), (58.0, "b")):
        sim.timeout(when, value=val).callbacks.append(fire)
    kick = sim.event()  # zero-delay: lands in the heap, not the wheel

    def on_kick(ev):
        t = sim.timeout(12.0, value="early")  # slot 1 < loaded head slot 5
        t.callbacks.append(fire)

    kick.callbacks.append(on_kick)
    kick.succeed()
    sim.run()
    assert log == [(12.0, "early"), (55.0, "a"), (58.0, "b")]


def test_wheel_run_until_and_peek():
    for slot in (None, 4.0):
        sim = Simulator(timer_slot=slot)
        fired = []
        for d in (1.0, 9.0, 21.0):
            sim.timeout(d, value=d).callbacks.append(
                lambda ev: fired.append(ev.value)
            )
        assert sim.peek() == 1.0
        assert sim.run(until=10.0) == 10.0
        assert fired == [1.0, 9.0]
        assert sim.peek() == 21.0
        assert sim.run() == 21.0
        assert fired == [1.0, 9.0, 21.0]


def test_wheel_validation():
    with pytest.raises(ValueError):
        _TimerWheel(0.0)
    with pytest.raises(ValueError):
        Simulator(timer_slot=-1.0)


# ---------------------------------------------------------------------------
# stale-completion-timer regressions (flow killed + replaced, same timestep)
# ---------------------------------------------------------------------------


def test_local_capped_flow_killed_mid_drain_then_reposted():
    # The dead flow's drain timer (t=1.0) is tombstoned by the kill; if
    # it fired anyway it would double-trigger done / credit phantom bytes.
    sim = Simulator()
    net = Network(sim)
    finished = []

    def driver():
        f1 = net.transfer_flow((), 1e6, rate_cap=1e6)  # drains in 1 s
        f1.done.defuse()
        yield sim.timeout(0.5)
        assert net.fail_flow(f1, reason="test-kill")
        f2 = net.transfer_flow((), 2e6, rate_cap=1e6)  # same timestep
        got = yield f2.done
        finished.append((sim.now, got))

    sim.process(driver(), name="driver")
    sim.run()
    assert finished == [(2.5, 2e6)]
    assert net.bytes_delivered == 2e6  # the killed flow credited nothing


def test_link_flow_killed_then_reposted_same_timestep():
    # f1 (would finish at t=1.0) dies at t=0.25; f2 starts in the same
    # timestep over the same links.  f1's superseded completion timer
    # must not finish f2 early: f2 completes on its own timeline.
    sim = Simulator()
    net = Network(sim)
    a = net.add_link("a", 1e6)
    b = net.add_link("b", 1e6)
    finished = []

    def driver():
        f1 = net.transfer_flow((a, b), 1e6)
        f1.done.defuse()
        yield sim.timeout(0.25)
        assert net.fail_flow(f1, reason="test-kill")
        f2 = net.transfer_flow((a, b), 1e6)
        got = yield f2.done
        finished.append((sim.now, got))

    sim.process(driver(), name="driver")
    sim.run()
    assert finished == [(1.25, 1e6)]
    assert net.bytes_delivered == 1e6


def test_killed_flow_failure_is_pre_defused():
    sim = Simulator()
    net = Network(sim)
    a = net.add_link("a", 1e6)
    b = net.add_link("b", 1e6)

    def driver():
        f = net.transfer_flow((a, b), 1e9)
        yield sim.timeout(0.1)
        net.fail_flow(f, reason="nobody-waits")

    sim.process(driver(), name="driver")
    sim.run()  # must not raise FlowFailed at drain


def test_waiter_on_killed_flow_sees_flowfailed():
    sim = Simulator()
    net = Network(sim)
    a = net.add_link("a", 1e6)
    b = net.add_link("b", 1e6)
    caught = []

    def waiter(f):
        try:
            yield f.done
        except FlowFailed as exc:
            caught.append(str(exc))

    def killer(f):
        yield sim.timeout(0.1)
        net.fail_flow(f, reason="chaos")

    f = net.transfer_flow((a, b), 1e9)
    sim.process(waiter(f), name="waiter")
    sim.process(killer(f), name="killer")
    sim.run()
    assert caught and "chaos" in caught[0]
