"""Tests for the max-min fair flow-level network model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simnet.kernel import Simulator
from repro.simnet.network import Network


def _net_two_links(sim, cap=100.0):
    net = Network(sim)
    up = net.add_link("up", cap)
    down = net.add_link("down", cap)
    return net, up, down


class TestSingleFlow:
    def test_full_capacity(self):
        sim = Simulator()
        net, up, down = _net_two_links(sim)

        def proc(sim):
            yield net.transfer((up, down), 500.0)

        sim.process(proc(sim))
        assert sim.run() == pytest.approx(5.0)

    def test_latency_added_before_bytes(self):
        sim = Simulator()
        net, up, down = _net_two_links(sim)

        def proc(sim):
            yield net.transfer((up, down), 100.0, latency=2.0)

        sim.process(proc(sim))
        assert sim.run() == pytest.approx(3.0)

    def test_zero_bytes_costs_only_latency(self):
        sim = Simulator()
        net, up, down = _net_two_links(sim)

        def proc(sim):
            yield net.transfer((up, down), 0.0, latency=0.25)

        sim.process(proc(sim))
        assert sim.run() == pytest.approx(0.25)

    def test_empty_path_is_local(self):
        sim = Simulator()
        net = Network(sim)

        def proc(sim):
            yield net.transfer((), 1e9, latency=0.5)

        sim.process(proc(sim))
        assert sim.run() == pytest.approx(0.5)

    def test_validation(self):
        sim = Simulator()
        net, up, down = _net_two_links(sim)
        with pytest.raises(ValueError):
            net.transfer((up,), -1)
        with pytest.raises(ValueError):
            net.transfer((up,), 1, latency=-1)
        with pytest.raises(ValueError):
            net.add_link("up", 50)


class TestSharing:
    def test_two_flows_same_link_split_evenly(self):
        sim = Simulator()
        net = Network(sim)
        link = net.add_link("l", 100.0)
        done = []

        def proc(sim, tag):
            yield net.transfer((link,), 100.0)
            done.append((tag, sim.now))

        sim.process(proc(sim, "a"))
        sim.process(proc(sim, "b"))
        sim.run()
        assert done == [("a", 2.0), ("b", 2.0)]

    def test_disjoint_flows_dont_interfere(self):
        sim = Simulator()
        net = Network(sim)
        l1 = net.add_link("l1", 100.0)
        l2 = net.add_link("l2", 100.0)
        done = {}

        def proc(sim, tag, link):
            yield net.transfer((link,), 100.0)
            done[tag] = sim.now

        sim.process(proc(sim, "a", l1))
        sim.process(proc(sim, "b", l2))
        sim.run()
        assert done == {"a": 1.0, "b": 1.0}

    def test_maxmin_bottleneck_reallocation(self):
        """Classic max-min: flows A (l1), B (l1+l2), C (l2), caps 100 each.

        Fair share: B is constrained to 50 on both links; A and C then get
        the leftover 50... actually progressive filling gives every flow 50
        first (both links have 2 flows), then A and C get the residual:
        A=50, B=50, C=50 -> residual 0. All flows at 50.
        """
        sim = Simulator()
        net = Network(sim)
        l1 = net.add_link("l1", 100.0)
        l2 = net.add_link("l2", 100.0)
        done = {}

        def proc(sim, tag, path, size):
            yield net.transfer(path, size)
            done[tag] = sim.now

        sim.process(proc(sim, "A", (l1,), 100.0))
        sim.process(proc(sim, "B", (l1, l2), 100.0))
        sim.process(proc(sim, "C", (l2,), 100.0))
        sim.run()
        # All three start at 50 B/s. Nobody finishes before t=2; at t=2 all
        # three complete simultaneously (equal sizes, equal rates).
        assert done == {"A": 2.0, "B": 2.0, "C": 2.0}

    def test_departure_speeds_up_survivor(self):
        sim = Simulator()
        net = Network(sim)
        link = net.add_link("l", 100.0)
        done = {}

        def proc(sim, tag, size):
            yield net.transfer((link,), size)
            done[tag] = sim.now

        sim.process(proc(sim, "small", 50.0))
        sim.process(proc(sim, "big", 150.0))
        sim.run()
        # Shared at 50/50 until small finishes at t=1 (50 bytes each);
        # big then has 100 left at 100 B/s -> t=2.
        assert done["small"] == pytest.approx(1.0)
        assert done["big"] == pytest.approx(2.0)

    def test_fan_in_congestion(self):
        """7 senders -> 1 receiver: receiver downlink is the bottleneck."""
        sim = Simulator()
        net = Network(sim)
        downlink = net.add_link("rx.down", 100.0)
        uplinks = [net.add_link(f"tx{i}.up", 100.0) for i in range(7)]
        done = []

        def proc(sim, up):
            yield net.transfer((up, downlink), 100.0)
            done.append(sim.now)

        for up in uplinks:
            sim.process(proc(sim, up))
        sim.run()
        # All 7 share the 100 B/s downlink -> 7*100/100 = 7 s.
        assert done == pytest.approx([7.0] * 7)

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.floats(1.0, 1000.0), min_size=1, max_size=10),
    )
    def test_shared_link_work_conservation(self, sizes):
        """n flows on one link: makespan == total_bytes / capacity exactly."""
        sim = Simulator()
        net = Network(sim)
        link = net.add_link("l", 100.0)

        def proc(sim, size):
            yield net.transfer((link,), size)

        for size in sizes:
            sim.process(proc(sim, size))
        end = sim.run()
        assert end == pytest.approx(sum(sizes) / 100.0)

    def test_bytes_delivered_accounting(self):
        sim = Simulator()
        net = Network(sim)
        link = net.add_link("l", 100.0)

        def proc(sim):
            yield net.transfer((link,), 70.0)

        sim.process(proc(sim))
        sim.run()
        assert net.bytes_delivered == pytest.approx(70.0)


class TestArenaIsolation:
    """Slot/arena reuse must never leak state across Network instances.

    The vectorized engine keeps per-network dense slot lists (swap-remove
    recycling) and draws completion timers from the simulator's pooled
    tick arena.  A fresh Network — on a fresh simulator OR sharing a
    simulator whose tick pool and shared-tick state are already warm
    from a previous network's run — must behave exactly like the first.
    """

    SIZES = (50.0, 130.0, 70.0, 260.0)

    def _run_round(self, sim, net):
        link = net.add_link("arena-l", 100.0)
        t0 = sim.now
        done = []

        def proc(size):
            yield net.transfer((link,), size)
            done.append((sim.now - t0, size))

        for s in self.SIZES:
            sim.process(proc(s))
        sim.run()
        return done, net.bytes_delivered

    @pytest.mark.parametrize("engine", ["vectorized", "reference"])
    def test_fresh_network_after_run_is_pristine(self, engine):
        sim = Simulator()
        first = Network(sim, engine=engine)
        base_done, base_bytes = self._run_round(sim, first)
        assert len(base_done) == len(self.SIZES)
        if engine == "vectorized":
            # The slot lists drain back to empty with every slot freed.
            assert first._vflows == []
            assert first._vrem == []
            assert first._vrate == []
        # A second network on the SAME simulator starts with a warm
        # tick arena and a non-zero clock; it must reproduce the first
        # network's timeline relative to its own start, from blank state.
        second = Network(sim, engine=engine)
        if engine == "vectorized":
            assert second._vflows == [] and second._vrem == []
        done2, bytes2 = self._run_round(sim, second)
        assert [s for _, s in done2] == [s for _, s in base_done]
        for (dt2, _), (dt1, _) in zip(done2, base_done):
            assert dt2 == pytest.approx(dt1)
        assert bytes2 == pytest.approx(base_bytes)
        assert first.bytes_delivered == pytest.approx(base_bytes)  # untouched

    def test_finished_flows_release_their_slots(self):
        sim = Simulator()
        net = Network(sim, engine="vectorized")
        link = net.add_link("slots-l", 100.0)
        flows = [net.transfer_flow((link,), 40.0) for _ in range(3)]
        assert [f.slot for f in flows] == [0, 1, 2]
        sim.run()
        assert all(f.slot == -1 for f in flows)
        assert all(f.done.triggered for f in flows)
        # The next flow reuses slot 0 — dense from the bottom again.
        late = net.transfer_flow((link,), 10.0)
        assert late.slot == 0
        sim.run()
        assert late.slot == -1
