"""Network-level faults: flow kill/cancel semantics, link flaps,
partitions, seeded flow-loss streams, and plan time-shifting."""

import pytest

from repro.simnet.cluster import Cluster, ClusterSpec
from repro.simnet.faults import (
    NETWORK_FAULT_SPECS,
    DiskDegradation,
    FaultInjector,
    FaultPlan,
    FlowLossRate,
    LinkFlap,
    NetworkPartition,
    NodeCrash,
)
from repro.simnet.kernel import Interrupt, Simulator
from repro.simnet.network import FlowFailed, Network


# -- spec validation ----------------------------------------------------------
class TestNetworkSpecValidation:
    def test_flap_needs_positive_duration(self):
        with pytest.raises(ValueError):
            LinkFlap(node=1, at=0.0, duration=0.0)

    def test_repeated_flaps_need_period(self):
        with pytest.raises(ValueError, match="period"):
            LinkFlap(node=1, at=0.0, duration=2.0, flaps=3)

    def test_flap_period_must_exceed_duration(self):
        with pytest.raises(ValueError, match="exceed"):
            LinkFlap(node=1, at=0.0, duration=5.0, flaps=2, period=5.0)
        LinkFlap(node=1, at=0.0, duration=5.0, flaps=2, period=5.1)  # ok

    def test_partition_nodes_deduped_and_sorted(self):
        spec = NetworkPartition(nodes=(5, 3, 5), at=1.0, duration=2.0)
        assert spec.nodes == (3, 5)

    def test_partition_needs_a_cut_side(self):
        with pytest.raises(ValueError):
            NetworkPartition(nodes=(), at=1.0, duration=2.0)

    def test_partition_of_whole_cluster_rejected(self):
        plan = FaultPlan(
            specs=(NetworkPartition(nodes=(0, 1, 2, 3), at=1.0, duration=2.0),)
        )
        with pytest.raises(ValueError, match="both sides"):
            plan.validate(num_nodes=4)

    def test_loss_rate_must_be_positive(self):
        with pytest.raises(ValueError):
            FlowLossRate(rate=0.0)

    def test_loss_empty_node_tuple_rejected(self):
        with pytest.raises(ValueError):
            FlowLossRate(rate=0.1, nodes=())

    def test_loss_nonpositive_duration_rejected(self):
        with pytest.raises(ValueError):
            FlowLossRate(rate=0.1, duration=0.0)

    def test_network_fault_targets_validated_against_topology(self):
        for spec in (
            LinkFlap(node=9, at=0.0, duration=1.0),
            NetworkPartition(nodes=(1, 9), at=0.0, duration=1.0),
            FlowLossRate(rate=0.1, nodes=(9,)),
        ):
            with pytest.raises(ValueError, match="node 9"):
                FaultPlan(specs=(spec,)).validate(num_nodes=8)

    def test_has_network_faults(self):
        assert not FaultPlan().has_network_faults()
        assert not FaultPlan(
            specs=(NodeCrash(node=1, at=1.0),)
        ).has_network_faults()
        for cls, spec in zip(
            NETWORK_FAULT_SPECS,
            (
                LinkFlap(node=1, at=0.0, duration=1.0),
                NetworkPartition(nodes=(1,), at=0.0, duration=1.0),
                FlowLossRate(rate=0.1),
            ),
        ):
            assert isinstance(spec, cls)
            assert FaultPlan(specs=(spec,)).has_network_faults()


# -- failing and cancelling flows ---------------------------------------------
class TestFailFlow:
    def test_waiter_sees_flow_failed_and_share_recomputes(self):
        """Killing one of two flows delivers FlowFailed to its waiter and
        doubles the survivor's rate the same instant."""
        sim = Simulator()
        net = Network(sim)
        link = net.add_link("l", 100.0)
        events = {}
        victim = net.transfer_flow((link,), 1000.0)

        def victim_waiter():
            try:
                yield victim.done
                events["victim"] = ("done", sim.now)
            except FlowFailed as exc:
                events["victim"] = (exc.reason, sim.now)

        def survivor():
            yield net.transfer((link,), 200.0)
            events["survivor"] = sim.now

        def killer():
            yield sim.timeout(1.0)
            assert net.fail_flow(victim, reason="loss:l")

        sim.process(victim_waiter())
        sim.process(survivor())
        sim.process(killer())
        sim.run()
        assert events["victim"] == ("loss:l", 1.0)
        # Shared 50/50 for 1s (50 bytes moved), then full 100 B/s for the
        # remaining 150 bytes -> t = 1 + 1.5.
        assert events["survivor"] == pytest.approx(2.5)
        assert net.flows_failed == 1
        assert net.first_flow_failure_at == pytest.approx(1.0)
        assert link._flows == set()

    def test_fail_after_completion_is_noop(self):
        sim = Simulator()
        net = Network(sim)
        link = net.add_link("l", 100.0)
        flow = net.transfer_flow((link,), 100.0)

        def proc():
            yield flow.done
            assert not net.fail_flow(flow)

        sim.process(proc())
        sim.run()
        assert net.flows_failed == 0

    def test_cancel_counts_separately_from_loss(self):
        sim = Simulator()
        net = Network(sim)
        link = net.add_link("l", 100.0)
        flow = net.transfer_flow((link,), 1000.0)
        flow.done.defuse()  # nobody waits; cancellation must not crash run()

        def canceller():
            yield sim.timeout(1.0)
            net.cancel_flow(flow, reason="fetch-timeout")

        sim.process(canceller())
        sim.run()
        assert net.flows_cancelled == 1
        assert net.flows_failed == 0
        assert net.first_flow_failure_at is None

    def test_unwaited_killed_flow_does_not_crash_run(self):
        """fail_flow pre-defuses: a kill nobody observes is not an error."""
        sim = Simulator()
        net = Network(sim)
        link = net.add_link("l", 100.0)
        flow = net.transfer_flow((link,), 1000.0)

        def killer():
            yield sim.timeout(0.5)
            net.fail_flow(flow)

        sim.process(killer())
        sim.run()  # must not raise at drain time


class TestLinkDownAndPartition:
    def _cluster(self, nodes=4):
        sim = Simulator()
        return sim, Cluster(sim, ClusterSpec(num_nodes=nodes))

    def test_link_down_kills_crossing_flows_and_blocks_new(self):
        sim, cluster = self._cluster()
        net = cluster.network
        node = cluster.node(1)
        outcomes = []

        def sender(src, dst, delay):
            yield sim.timeout(delay)
            try:
                yield cluster.send(src, dst, 50 * 1024 * 1024)
                outcomes.append((src, dst, "ok"))
            except FlowFailed as exc:
                outcomes.append((src, dst, exc.reason))

        sim.process(sender(1, 2, 0.0))  # in flight when the link drops
        sim.process(sender(3, 2, 0.0))  # does not touch node 1's links
        sim.process(sender(1, 3, 1.0))  # starts while the link is down

        def flapper():
            yield sim.timeout(0.1)
            net.set_link_down(node.uplink)
            net.set_link_down(node.downlink)
            yield sim.timeout(5.0)
            net.set_link_up(node.uplink)
            net.set_link_up(node.downlink)

        sim.process(flapper())
        sim.run()
        by_pair = {(s, d): r for s, d, r in outcomes}
        assert by_pair[(1, 2)].startswith("link-down:")
        assert by_pair[(1, 3)].startswith("link-down:")
        assert by_pair[(3, 2)] == "ok"
        assert node.uplink._flows == set() and node.downlink._flows == set()

    def test_partition_kills_cross_cut_only_and_heals(self):
        sim, cluster = self._cluster(nodes=6)
        plan = FaultPlan(
            specs=(NetworkPartition(nodes=(4, 5), at=0.05, duration=3.0),)
        )
        inj = FaultInjector(sim, cluster, plan, host=None)
        inj.start()
        outcomes = {}

        def sender(tag, src, dst, delay):
            yield sim.timeout(delay)
            try:
                yield cluster.send(src, dst, 10 * 1024 * 1024)
                outcomes[tag] = "ok"
            except FlowFailed as exc:
                outcomes[tag] = exc.reason

        sim.process(sender("cross-inflight", 4, 1, 0.0))
        sim.process(sender("within-minority", 4, 5, 0.0))
        sim.process(sender("within-majority", 0, 1, 0.0))
        sim.process(sender("cross-during", 1, 5, 1.0))
        sim.process(sender("cross-after-heal", 1, 5, 4.0))
        sim.run()
        assert outcomes == {
            "cross-inflight": "partitioned",
            "within-minority": "ok",
            "within-majority": "ok",
            "cross-during": "partitioned",
            "cross-after-heal": "ok",
        }
        assert inj.partitions == 1

    def test_flap_spec_drops_both_directions_n_times(self):
        sim, cluster = self._cluster()
        plan = FaultPlan(
            specs=(LinkFlap(node=2, at=1.0, duration=0.5, flaps=3, period=2.0),)
        )
        inj = FaultInjector(sim, cluster, plan, host=None)
        inj.start()
        node = cluster.node(2)
        states = []

        def probe():
            for t in (0.5, 1.2, 1.8, 3.2, 3.8, 5.2, 5.8):
                yield sim.timeout(t - sim.now)
                states.append((t, node.uplink.up and node.downlink.up))

        sim.process(probe())
        sim.run()
        assert states == [
            (0.5, True),
            (1.2, False),
            (1.8, True),
            (3.2, False),
            (3.8, True),
            (5.2, False),
            (5.8, True),
        ]
        assert inj.link_flaps == 3


class TestFlowLossStream:
    def _run_traffic(self, seed, rate=0.5, senders=20):
        """A fixed traffic pattern under a seeded loss stream; returns the
        (kill-count, failure-times) signature of the run."""
        sim = Simulator()
        cluster = Cluster(sim, ClusterSpec(num_nodes=4))
        plan = FaultPlan(specs=(FlowLossRate(rate=rate),), seed=seed)
        inj = FaultInjector(sim, cluster, plan, host=None)
        inj.start()
        failures = []

        def sender(i):
            yield sim.timeout(0.3 * i)
            try:
                yield cluster.send(i % 3, 3, 20 * 1024 * 1024)
            except FlowFailed:
                failures.append(round(sim.now, 9))

        for i in range(senders):
            sim.process(sender(i))

        def stopper():
            yield sim.timeout(30.0)
            inj.stop()

        sim.process(stopper())
        sim.run()
        return inj.flows_killed, failures

    def test_same_seed_same_kill_timeline(self):
        a = self._run_traffic(seed=11)
        b = self._run_traffic(seed=11)
        assert a == b
        assert a[0] > 0, "rate 0.5/link-s over 30s must kill something"

    def test_seed_changes_kill_timeline(self):
        assert self._run_traffic(seed=11) != self._run_traffic(seed=12)

    def test_kills_on_idle_links_absorbed(self):
        """No traffic, aggressive loss: the stream draws and discards, so
        nothing fails and the window closes on its own."""
        sim = Simulator()
        cluster = Cluster(sim, ClusterSpec(num_nodes=4))
        plan = FaultPlan(specs=(FlowLossRate(rate=2.0, duration=10.0),), seed=3)
        inj = FaultInjector(sim, cluster, plan, host=None)
        inj.start()
        sim.run()
        assert inj.flows_killed == 0
        assert cluster.network.flows_failed == 0


# -- Interrupt into a process blocked on an in-flight flow --------------------
class TestInterruptOnInflightFlow:
    def test_interrupted_waiter_cancels_without_leaking(self):
        """The task-abort pattern: a process blocked on flow.done gets
        interrupted, cancels its flow, and no link keeps a ghost entry —
        the survivor immediately claims the whole capacity."""
        sim = Simulator()
        net = Network(sim)
        link = net.add_link("l", 100.0)
        done = {}

        def fetcher():
            flow = net.transfer_flow((link,), 1000.0)
            try:
                yield flow.done
                done["fetcher"] = "finished"
            except Interrupt:
                net.cancel_flow(flow, reason="task-aborted")
                done["fetcher"] = "aborted"

        def survivor():
            yield net.transfer((link,), 200.0)
            done["survivor"] = sim.now

        victim = sim.process(fetcher())
        sim.process(survivor())

        def chaos():
            yield sim.timeout(1.0)
            victim.interrupt("node lost")

        sim.process(chaos())
        sim.run()
        assert done["fetcher"] == "aborted"
        # 50/50 for 1s, then the survivor's last 150 bytes at full rate.
        assert done["survivor"] == pytest.approx(2.5)
        assert link._flows == set()
        assert net._flows == set()

    def test_uncancelled_flow_of_interrupted_waiter_still_completes(self):
        """Interrupting the waiter does not kill the flow itself: the bytes
        keep moving and the link drains when they arrive."""
        sim = Simulator()
        net = Network(sim)
        link = net.add_link("l", 100.0)
        flow = net.transfer_flow((link,), 100.0)
        flow.done.defuse()  # the interrupted waiter walks away from it

        def fetcher():
            try:
                yield flow.done
            except Interrupt:
                pass

        victim = sim.process(fetcher())

        def chaos():
            yield sim.timeout(0.2)
            victim.interrupt("rebalance")

        sim.process(chaos())
        end = sim.run()
        assert flow.done.triggered and flow.done.ok
        assert end == pytest.approx(1.0)
        assert link._flows == set()


# -- FaultPlan.shifted --------------------------------------------------------
class TestShiftedPlan:
    def test_zero_offset_is_identity(self):
        plan = FaultPlan(specs=(NodeCrash(node=1, at=5.0),))
        assert plan.shifted(0.0) is plan

    def test_negative_offset_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan().shifted(-1.0)

    def test_past_crash_dropped_future_crash_moved(self):
        plan = FaultPlan(
            specs=(NodeCrash(node=1, at=5.0), NodeCrash(node=2, at=40.0))
        )
        shifted = plan.shifted(10.0)
        assert [type(s).__name__ for s in shifted.specs] == ["NodeCrash"]
        assert shifted.specs[0].node == 2 and shifted.specs[0].at == 30.0

    def test_partition_mid_outage_keeps_remainder(self):
        plan = FaultPlan(
            specs=(NetworkPartition(nodes=(1,), at=20.0, duration=15.0),)
        )
        mid = plan.shifted(25.0).specs[0]
        assert (mid.at, mid.duration) == (0.0, 10.0)
        assert plan.shifted(35.0).specs == ()  # fully healed: never recurs

    def test_loss_window_clipped(self):
        plan = FaultPlan(
            specs=(FlowLossRate(rate=0.1, start=10.0, duration=20.0),)
        )
        clipped = plan.shifted(15.0).specs[0]
        assert (clipped.start, clipped.duration) == (0.0, 15.0)
        assert plan.shifted(30.0).specs == ()
        open_ended = FaultPlan(specs=(FlowLossRate(rate=0.1, start=10.0),))
        assert open_ended.shifted(100.0).specs[0].start == 0.0

    def test_flap_train_advances_whole_periods(self):
        plan = FaultPlan(
            specs=(LinkFlap(node=1, at=5.0, duration=2.0, flaps=4, period=10.0),)
        )
        # Offset 18: flap 1 (t=5-7) and flap 2 (t=15-17) are history,
        # flap 3 was due at t=25 -> now at 7 with two flaps left.
        adv = plan.shifted(18.0).specs[0]
        assert (adv.at, adv.flaps) == (7.0, 2)
        # Offset 16: mid second outage (15-17) -> 1s remainder now, then
        # the remaining train picks up at its own schedule.
        mid = plan.shifted(16.0).specs
        assert (mid[0].at, mid[0].duration, mid[0].flaps) == (0.0, 1.0, 1)
        assert mid[1].flaps == 2

    def test_permanent_degradation_survives_any_offset(self):
        plan = FaultPlan(specs=(DiskDegradation(node=1, at=5.0, factor=2.0),))
        assert plan.shifted(100.0).specs[0].at == 0.0

    def test_shift_preserves_seed(self):
        plan = FaultPlan(specs=(NodeCrash(node=1, at=50.0),), seed=99)
        assert plan.shifted(10.0).seed == 99
