"""Tests for the back-compat tracing facade in ``repro.simnet.trace``.

The historical label-matching pairing had two silent-data bugs this
shim fixes: unmatched ``:end`` records vanished, and re-entrant labels
(two attempts of the same task) clobbered each other in ``spans()``.
"""

from repro.simnet.trace import TraceEvent, Tracer


class FakeSim:
    def __init__(self):
        self.now = 0.0


class TestSpanPairing:
    def test_basic_start_end_pair(self):
        sim = FakeSim()
        tr = Tracer(sim)
        tr.record("task", "map0:start")
        sim.now = 3.0
        tr.record("task", "map0:end")
        assert tr.spans("task") == {"map0": (0.0, 3.0)}

    def test_reentrant_label_yields_two_spans(self):
        sim = FakeSim()
        tr = Tracer(sim)
        tr.record("task", "map3:start")
        sim.now = 1.0
        tr.record("task", "map3:end")
        sim.now = 2.0
        tr.record("task", "map3:start")
        sim.now = 5.0
        tr.record("task", "map3:end")
        # Old dict shape: the last occurrence wins...
        assert tr.spans("task") == {"map3": (2.0, 5.0)}
        # ...but both occurrences survive in span_list.
        assert tr.span_list("task") == [("map3", 0.0, 1.0), ("map3", 2.0, 5.0)]

    def test_nested_same_label_pairs_lifo(self):
        sim = FakeSim()
        tr = Tracer(sim)
        tr.record("io", "read:start")
        sim.now = 1.0
        tr.record("io", "read:start")
        sim.now = 2.0
        tr.record("io", "read:end")  # closes the inner (t0=1)
        sim.now = 4.0
        tr.record("io", "read:end")  # closes the outer (t0=0)
        assert sorted(tr.span_list("io"), key=lambda s: s[1]) == [
            ("read", 0.0, 4.0),
            ("read", 1.0, 2.0),
        ]

    def test_unmatched_end_is_surfaced_not_dropped(self):
        sim = FakeSim()
        sim.now = 7.0
        tr = Tracer(sim)
        tr.record("task", "ghost:end")
        assert tr.unmatched_ends == [(7.0, "task", "ghost")]
        assert tr.spans("task") == {}

    def test_open_span_excluded_until_ended(self):
        tr = Tracer(FakeSim())
        tr.record("task", "map0:start")
        assert tr.spans("task") == {}

    def test_plain_records_are_not_spans(self):
        sim = FakeSim()
        tr = Tracer(sim)
        tr.record("sched", "heartbeat", payload={"node": 3})
        assert tr.spans("sched") == {}
        (ev,) = list(tr.by_category("sched"))
        assert ev == TraceEvent(0.0, "sched", "heartbeat", {"node": 3})

    def test_disabled_tracer_records_nothing(self):
        tr = Tracer(FakeSim())
        tr.enabled = False
        tr.record("task", "map0:start")
        tr.record("task", "map0:end")
        assert tr.events == []
        assert tr.spans("task") == {}
        assert tr.unmatched_ends == []

    def test_categories_are_independent(self):
        sim = FakeSim()
        tr = Tracer(sim)
        tr.record("a", "x:start")
        sim.now = 1.0
        tr.record("b", "x:start")
        sim.now = 2.0
        tr.record("a", "x:end")
        tr.record("b", "x:end")
        assert tr.spans("a") == {"x": (0.0, 2.0)}
        assert tr.spans("b") == {"x": (1.0, 2.0)}
