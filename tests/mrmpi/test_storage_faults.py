"""MPI-D under storage faults: no NameNode means damage is permanent —
failover while copies survive, permanent DNF when the last one dies."""

import math

from repro.hadoop.job import JAVASORT_PROFILE, JobSpec
from repro.mrmpi import MrMpiConfig, run_mpid_job_under_storage_faults
from repro.simnet.faults import (
    BlockCorruption,
    Decommission,
    DiskFailure,
    FaultPlan,
)
from repro.util.units import MiB


def _spec(mb=640):
    return JobSpec("sort", input_bytes=mb * MiB, profile=JAVASORT_PROFILE)


def _disk_plan(rate_per_hour, seed=2011):
    return FaultPlan(
        specs=(DiskFailure(rate=rate_per_hour / 3600.0),), seed=seed
    )


class TestPermanentDataLoss:
    def test_unreplicated_input_disk_death_is_a_permanent_dnf(self):
        cfg = MrMpiConfig(input_replication=1)
        m = run_mpid_job_under_storage_faults(
            _spec(), _disk_plan(rate_per_hour=60.0), config=cfg
        )
        assert not m.completed
        assert m.data_lost
        assert math.isinf(m.elapsed)
        # The aborting attempt is charged, but once the block is known
        # lost the loop stops resubmitting — restarting cannot help.
        assert m.restarts <= 1

    def test_replicated_input_survives_the_same_plan(self):
        plan = _disk_plan(rate_per_hour=60.0)
        m = run_mpid_job_under_storage_faults(
            _spec(), plan, config=MrMpiConfig(input_replication=3)
        )
        assert m.completed
        assert not m.data_lost
        assert m.elapsed >= m.clean_elapsed


class TestReadFailover:
    def test_corruption_fails_over_at_remote_read_cost(self):
        plan = FaultPlan(specs=(BlockCorruption(rate=0.5),), seed=2011)
        m = run_mpid_job_under_storage_faults(
            _spec(), plan, config=MrMpiConfig(input_replication=3)
        )
        assert m.completed
        assert m.read_failovers > 0
        assert not m.data_lost


class TestCleanPathParity:
    def test_dormant_storage_spec_is_bit_identical_to_clean(self):
        # Storage machinery fully built, zero events fired: the run must
        # cost exactly what the clean run costs.
        plan = FaultPlan(specs=(Decommission(node=1, at=1e9),), seed=2011)
        m = run_mpid_job_under_storage_faults(
            _spec(), plan, config=MrMpiConfig(input_replication=3)
        )
        assert m.completed
        assert m.elapsed == m.clean_elapsed
        assert m.read_failovers == 0


class TestDeterminism:
    def test_same_plan_same_summary(self):
        plan = _disk_plan(rate_per_hour=240.0)
        cfg = MrMpiConfig(input_replication=2)
        a = run_mpid_job_under_storage_faults(_spec(), plan, config=cfg)
        b = run_mpid_job_under_storage_faults(_spec(), plan, config=cfg)
        assert a.summary() == b.summary()

    def test_summary_carries_storage_fields(self):
        m = run_mpid_job_under_storage_faults(
            _spec(),
            _disk_plan(rate_per_hour=60.0),
            config=MrMpiConfig(input_replication=1),
        )
        s = m.summary()
        assert s["data_lost"] is True
        assert "read_failovers" in s
