"""MPI-D on a lossy network: baseline abort semantics, the reliable
retransmit mode, and the restart loop's determinism."""

import math

import pytest

from repro.hadoop.job import JAVASORT_PROFILE, JobSpec
from repro.mrmpi import (
    MpiJobAborted,
    MrMpiConfig,
    MrMpiSimulation,
    run_mpid_job,
    run_mpid_job_under_net_faults,
)
from repro.simnet.faults import FaultPlan, FlowLossRate, NodeCrash
from repro.util.units import GiB


def _spec(gb=0.5):
    return JobSpec("sort", input_bytes=int(gb * GiB), profile=JAVASORT_PROFILE)


#: Aggressive enough that a kill is certain to land inside MPI-D's short
#: eager-send window at this input size.
_HEAVY_LOSS = FaultPlan(specs=(FlowLossRate(rate=2.0),), seed=2011)


class TestBaselineAbort:
    def test_lost_stream_aborts_the_whole_job(self):
        env = MrMpiSimulation(spec=_spec(), fault_plan=_HEAVY_LOSS)
        with pytest.raises(MpiJobAborted) as info:
            env.run()
        exc = info.value
        assert exc.at > 0.0
        assert exc.reason
        assert exc.metrics.aborted
        assert exc.metrics.aborted_at == exc.at
        assert exc.metrics.flows_lost > 0

    def test_abort_time_is_the_first_flow_failure(self):
        env = MrMpiSimulation(spec=_spec(), fault_plan=_HEAVY_LOSS)
        with pytest.raises(MpiJobAborted) as info:
            env.run()
        assert info.value.at == env.cluster.network.first_flow_failure_at

    def test_non_network_specs_rejected(self):
        plan = FaultPlan(specs=(NodeCrash(node=1, at=5.0),))
        with pytest.raises(ValueError, match="restart model"):
            MrMpiSimulation(spec=_spec(), fault_plan=plan)


class TestReliableTransport:
    def test_retransmits_and_completes(self):
        cfg = MrMpiConfig(reliable_transport=True)
        env = MrMpiSimulation(spec=_spec(), config=cfg, fault_plan=_HEAVY_LOSS)
        metrics = env.run()
        assert not metrics.aborted
        assert metrics.retransmits > 0
        clean = run_mpid_job(_spec()).elapsed
        assert metrics.elapsed >= clean

    def test_reliable_run_is_deterministic(self):
        cfg = MrMpiConfig(reliable_transport=True)

        def once():
            env = MrMpiSimulation(
                spec=_spec(), config=cfg, fault_plan=_HEAVY_LOSS
            )
            m = env.run()
            return m.elapsed, m.retransmits, m.flows_lost

        assert once() == once()


class TestRestartLoop:
    def test_baseline_restarts_until_a_clean_attempt(self):
        out = run_mpid_job_under_net_faults(
            _spec(), _HEAVY_LOSS, config=MrMpiConfig(max_restarts=100)
        )
        assert out.restarts > 0
        if out.completed:
            assert out.elapsed > out.clean_elapsed
            assert out.lost_work_seconds > 0
        else:
            assert math.isinf(out.elapsed)

    def test_restart_budget_exhaustion_is_a_dnf(self):
        out = run_mpid_job_under_net_faults(
            _spec(), _HEAVY_LOSS, config=MrMpiConfig(max_restarts=1)
        )
        assert not out.completed
        assert math.isinf(out.elapsed)
        # The attempt that breaks the budget is itself counted.
        assert out.restarts == 2

    def test_restart_loop_is_deterministic(self):
        def once():
            out = run_mpid_job_under_net_faults(
                _spec(), _HEAVY_LOSS, config=MrMpiConfig(max_restarts=3)
            )
            return (
                out.completed,
                out.elapsed,
                out.restarts,
                out.lost_work_seconds,
                out.flows_lost,
            )

        assert once() == once()

    def test_reliable_transport_usually_skips_the_restart_loop(self):
        out = run_mpid_job_under_net_faults(
            _spec(),
            _HEAVY_LOSS,
            config=MrMpiConfig(max_restarts=100, reliable_transport=True),
        )
        assert out.completed
        assert out.restarts == 0
        assert out.retransmits > 0

    def test_loss_free_plan_matches_clean_run(self):
        """Net-fault mode with a window that closes before any kill: one
        attempt, bit-for-bit the clean makespan."""
        quiet = FaultPlan(
            specs=(FlowLossRate(rate=1e-6, duration=0.001),), seed=2011
        )
        out = run_mpid_job_under_net_faults(_spec(), quiet)
        assert out.restarts == 0
        assert out.flows_lost == 0
        assert out.elapsed == out.clean_elapsed
        assert out.clean_elapsed == run_mpid_job(_spec()).elapsed
