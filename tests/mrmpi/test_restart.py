"""MPI-D failure semantics: whole-job restart replay and checkpointing."""

import math

import pytest

from repro.hadoop import JobSpec, WORDCOUNT_PROFILE
from repro.mrmpi import (
    MrMpiConfig,
    replay_restarts,
    run_mpid_job,
    run_mpid_job_under_faults,
)
from repro.simnet.faults import CrashRate, FaultPlan, NodeCrash


def _spec():
    return JobSpec(
        name="wc",
        input_bytes=2 * 10**9,
        profile=WORDCOUNT_PROFILE,
        num_reduce_tasks=1,
    )


class TestReplayRestarts:
    def test_no_crashes_no_overhead(self):
        r = replay_restarts("j", 100.0, [], restart_overhead=5.0)
        assert r.elapsed == 100.0
        assert r.restarts == 0 and r.lost_work_seconds == 0.0
        assert r.completed

    def test_single_crash_loses_all_progress(self):
        r = replay_restarts("j", 100.0, [40.0], restart_overhead=5.0)
        assert r.elapsed == pytest.approx(145.0)  # 40 lost + 5 restart + 100
        assert r.restarts == 1
        assert r.lost_work_seconds == pytest.approx(40.0)

    def test_crash_after_finish_is_ignored(self):
        r = replay_restarts("j", 100.0, [150.0], restart_overhead=5.0)
        assert r.elapsed == 100.0 and r.restarts == 0

    def test_crash_during_restart_window_absorbed(self):
        r = replay_restarts("j", 100.0, [40.0, 42.0], restart_overhead=5.0)
        assert r.restarts == 1
        assert r.elapsed == pytest.approx(145.0)

    def test_checkpoint_bounds_lost_work(self):
        """With interval I the work lost per crash is < I plus the
        partial stretch — never the whole job."""
        r = replay_restarts(
            "j", 100.0, [47.0], restart_overhead=5.0,
            checkpoint_interval=10.0, checkpoint_cost=1.0,
        )
        # Overhead rate 1.1: progress at the crash is 47/1.1 ~ 42.7,
        # the last complete snapshot is at 40.
        assert r.lost_work_seconds == pytest.approx(47.0 / 1.1 - 40.0)
        assert r.lost_work_seconds < 10.0
        assert r.elapsed == pytest.approx(52.0 + 60.0 * 1.1)
        assert r.checkpoint_overhead_seconds > 0

    def test_checkpointing_costs_overhead_when_clean(self):
        r = replay_restarts(
            "j", 100.0, [], restart_overhead=5.0,
            checkpoint_interval=10.0, checkpoint_cost=1.0,
        )
        assert r.elapsed == pytest.approx(110.0)
        assert r.checkpoint_overhead_seconds == pytest.approx(10.0)

    def test_max_restarts_gives_up(self):
        r = replay_restarts(
            "j", 100.0, [10.0, 20.0, 30.0], restart_overhead=5.0, max_restarts=2
        )
        assert not r.completed
        assert math.isinf(r.elapsed)
        assert math.isinf(r.slowdown)

    def test_pure_function_of_inputs(self):
        args = ("j", 80.0, [10.0, 33.0, 64.0], 4.0)
        assert replay_restarts(*args).summary() == replay_restarts(*args).summary()

    def test_negative_work_rejected(self):
        with pytest.raises(ValueError):
            replay_restarts("j", -1.0, [], restart_overhead=5.0)


class TestRunUnderFaults:
    def test_empty_plan_matches_clean_run(self):
        clean = run_mpid_job(_spec()).elapsed
        r = run_mpid_job_under_faults(_spec(), FaultPlan())
        assert r.elapsed == clean
        assert r.restarts == 0

    def test_cached_clean_elapsed_skips_des(self):
        r = run_mpid_job_under_faults(_spec(), FaultPlan(), clean_elapsed=42.0)
        assert r.clean_elapsed == 42.0 and r.elapsed == 42.0

    def test_any_rank_failure_restarts_whole_job(self):
        clean = run_mpid_job(_spec()).elapsed
        plan = FaultPlan(specs=(NodeCrash(node=5, at=clean * 0.5),))
        r = run_mpid_job_under_faults(
            _spec(), plan, nodes=tuple(range(1, 8)), clean_elapsed=clean
        )
        assert r.restarts == 1
        assert r.elapsed > clean

    def test_deterministic_under_churn(self):
        plan = FaultPlan(specs=(CrashRate(rate=1 / 100.0, restart_after=10.0),), seed=5)
        kw = dict(nodes=tuple(range(1, 8)), clean_elapsed=50.0)
        a = run_mpid_job_under_faults(_spec(), plan, **kw)
        b = run_mpid_job_under_faults(_spec(), plan, **kw)
        assert a.summary() == b.summary()
        assert a.restarts >= 1

    def test_adaptive_horizon_covers_long_tails(self):
        """A rate harsh enough to stretch the run far past 4x clean still
        accounts every crash (the horizon doubles as needed)."""
        plan = FaultPlan(specs=(CrashRate(rate=1 / 40.0, restart_after=5.0),), seed=11)
        r = run_mpid_job_under_faults(
            _spec(), plan, nodes=(1, 2, 3, 4, 5, 6, 7), clean_elapsed=30.0
        )
        if r.completed:
            assert r.elapsed >= 30.0
        else:
            assert math.isinf(r.elapsed)

    def test_checkpointing_tames_harsh_churn(self):
        plan = FaultPlan(specs=(CrashRate(rate=1 / 60.0, restart_after=5.0),), seed=3)
        kw = dict(nodes=tuple(range(1, 8)), clean_elapsed=60.0)
        bare = run_mpid_job_under_faults(_spec(), plan, **kw)
        ck = run_mpid_job_under_faults(
            _spec(),
            plan,
            config=MrMpiConfig(checkpoint_interval=10.0, checkpoint_cost=1.0),
            **kw,
        )
        assert ck.checkpointed
        if bare.completed and ck.completed:
            assert ck.elapsed <= bare.elapsed
        else:
            assert ck.completed or not bare.completed


class TestConfigValidation:
    def test_negative_restart_overhead_rejected(self):
        with pytest.raises(ValueError):
            MrMpiConfig(restart_overhead=-1.0)

    def test_nonpositive_checkpoint_interval_rejected(self):
        with pytest.raises(ValueError):
            MrMpiConfig(checkpoint_interval=0.0)

    def test_negative_checkpoint_cost_rejected(self):
        with pytest.raises(ValueError):
            MrMpiConfig(checkpoint_cost=-0.1)

    def test_negative_max_restarts_rejected(self):
        with pytest.raises(ValueError):
            MrMpiConfig(max_restarts=-1)
