"""Tests for the MPI-D performance twin (the Figure 6 system)."""

import pytest

from repro.hadoop import HadoopConfig, JobSpec, WORDCOUNT_PROFILE, run_hadoop_job
from repro.hadoop.job import JAVASORT_PROFILE
from repro.mrmpi import MrMpiConfig, MrMpiSimulation, run_mpid_job
from repro.simnet.cluster import ClusterSpec
from repro.util.units import GB, MiB


def wc_spec(size):
    return JobSpec(
        name="wc", input_bytes=size, profile=WORDCOUNT_PROFILE, num_reduce_tasks=1
    )


class TestConfig:
    def test_paper_layout_defaults(self):
        cfg = MrMpiConfig()
        assert cfg.num_mappers == 49
        assert cfg.num_reducers == 1

    @pytest.mark.parametrize(
        "kw",
        [
            {"num_mappers": 0},
            {"num_reducers": 0},
            {"startup_time": -1},
            {"native_speedup": 0},
            {"partition_bytes": 1},
            {"output_replication": 0},
        ],
    )
    def test_validation(self, kw):
        with pytest.raises(ValueError):
            MrMpiConfig(**kw)


class TestExecution:
    def test_job_completes_with_metrics(self):
        m = run_mpid_job(wc_spec(1 * GB))
        assert m.elapsed > 0
        assert len(m.mappers) == 49
        assert len(m.reducers) == 1

    def test_mapper_timeline(self):
        m = run_mpid_job(wc_spec(512 * MiB))
        for mm in m.mappers:
            assert mm.started_at <= mm.finished_at
            assert mm.input_bytes > 0

    def test_reducer_receives_all_sent(self):
        m = run_mpid_job(wc_spec(1 * GB))
        assert m.reducers[0].received_bytes == pytest.approx(m.total_sent_bytes)

    def test_combiner_shrinks_traffic(self):
        m = run_mpid_job(wc_spec(1 * GB))
        assert m.total_sent_bytes < 0.1 * (1 * GB)

    def test_spills_happen_for_large_input(self):
        m = run_mpid_job(wc_spec(2 * GB))
        assert all(mm.spills >= 1 for mm in m.mappers)

    def test_multi_reducer_split(self):
        cfg = MrMpiConfig(num_mappers=8, num_reducers=4)
        m = run_mpid_job(
            JobSpec("sort", input_bytes=512 * MiB, profile=JAVASORT_PROFILE),
            config=cfg,
        )
        assert len(m.reducers) == 4
        per = [r.received_bytes for r in m.reducers]
        assert max(per) == pytest.approx(min(per))

    def test_deterministic(self):
        a = run_mpid_job(wc_spec(256 * MiB)).elapsed
        b = run_mpid_job(wc_spec(256 * MiB)).elapsed
        assert a == b

    def test_truncated_run_raises(self):
        sim = MrMpiSimulation(spec=wc_spec(4 * GB))
        with pytest.raises(RuntimeError, match="did not finish"):
            sim.run(until=1.0)

    def test_needs_two_nodes(self):
        with pytest.raises(ValueError):
            MrMpiSimulation(
                spec=wc_spec(GB), cluster_spec=ClusterSpec(num_nodes=1)
            )


class TestFigure6Shape:
    """The headline comparison: MPI-D vs Hadoop runtime ratios."""

    @pytest.fixture(scope="class")
    def hadoop_cfg(self):
        return HadoopConfig(map_slots=7, reduce_slots=7)

    def test_mpid_always_faster(self, hadoop_cfg):
        for size in (1 * GB, 4 * GB):
            h = run_hadoop_job(wc_spec(size), config=hadoop_cfg).elapsed
            m = run_mpid_job(wc_spec(size)).elapsed
            assert m < h

    def test_advantage_shrinks_with_scale(self, hadoop_cfg):
        """Paper: 8% at 1 GB -> 56% at 100 GB.  The ratio must rise."""
        r_small = (
            run_mpid_job(wc_spec(1 * GB)).elapsed
            / run_hadoop_job(wc_spec(1 * GB), config=hadoop_cfg).elapsed
        )
        r_big = (
            run_mpid_job(wc_spec(8 * GB)).elapsed
            / run_hadoop_job(wc_spec(8 * GB), config=hadoop_cfg).elapsed
        )
        assert r_small < r_big < 1.0

    def test_small_input_order_of_magnitude_win(self, hadoop_cfg):
        h = run_hadoop_job(wc_spec(1 * GB), config=hadoop_cfg).elapsed
        m = run_mpid_job(wc_spec(1 * GB)).elapsed
        assert m < 0.3 * h  # paper: 0.08; ours lands ~0.17
