"""Tests for MPI-D fault accounting: wasted seconds symmetric with Hadoop."""

import pytest

from repro.mrmpi.simulator import MrMpiFaultMetrics, replay_restarts


class TestWastedTaskSeconds:
    def test_sums_all_three_overheads(self):
        m = MrMpiFaultMetrics(
            job_name="j",
            clean_elapsed=100.0,
            lost_work_seconds=40.0,
            restart_overhead_seconds=60.0,
            checkpoint_overhead_seconds=5.0,
        )
        assert m.wasted_task_seconds == pytest.approx(105.0)

    def test_clean_run_wastes_nothing(self):
        m = replay_restarts("j", work=100.0, crashes=[], restart_overhead=30.0)
        assert m.elapsed == 100.0
        assert m.restarts == 0
        assert m.wasted_task_seconds == 0.0

    def test_summary_and_fault_summary_expose_it(self):
        m = replay_restarts("j", work=100.0, crashes=[50.0], restart_overhead=30.0)
        assert m.summary()["wasted_task_seconds"] == m.wasted_task_seconds
        fs = m.fault_summary()
        assert set(fs) == {
            "restarts",
            "lost_work_seconds",
            "restart_overhead_seconds",
            "checkpoint_overhead_seconds",
            "wasted_task_seconds",
            "flows_lost",
            "retransmits",
            "read_failovers",
            "data_lost",
        }
        assert fs["wasted_task_seconds"] == m.wasted_task_seconds


class TestReplayRestartOverhead:
    def test_single_crash_accounting(self):
        # Crash at t=50 of a 100 s job: 50 s of progress lost, 30 s of
        # downtime, then a full rerun -> finishes at 50 + 30 + 100 = 180.
        m = replay_restarts("j", work=100.0, crashes=[50.0], restart_overhead=30.0)
        assert m.restarts == 1
        assert m.lost_work_seconds == pytest.approx(50.0)
        assert m.restart_overhead_seconds == pytest.approx(30.0)
        assert m.elapsed == pytest.approx(180.0)
        assert m.wasted_task_seconds == pytest.approx(80.0)

    def test_overhead_accumulates_per_restart(self):
        m = replay_restarts(
            "j", work=100.0, crashes=[50.0, 150.0], restart_overhead=30.0
        )
        assert m.restarts == 2
        assert m.restart_overhead_seconds == pytest.approx(60.0)
        # Second crash at t=150: 70 s into the rerun (started at t=80).
        assert m.lost_work_seconds == pytest.approx(50.0 + 70.0)
        assert m.elapsed == pytest.approx(280.0)

    def test_crash_inside_restart_window_is_absorbed(self):
        # Second crash at t=60 lands while the job is still down
        # (restarting until t=80): nothing running, nothing to kill.
        m = replay_restarts(
            "j", work=100.0, crashes=[50.0, 60.0], restart_overhead=30.0
        )
        assert m.restarts == 1
        assert m.restart_overhead_seconds == pytest.approx(30.0)

    def test_checkpointing_trades_lost_work_for_overhead(self):
        m = replay_restarts(
            "j",
            work=100.0,
            crashes=[50.0],
            restart_overhead=30.0,
            checkpoint_interval=10.0,
            checkpoint_cost=2.5,
        )
        assert m.checkpointed
        # Progress at the crash: 50 / 1.25 = 40, all banked at the
        # 10-second checkpoint boundary -> zero lost work.
        assert m.lost_work_seconds == pytest.approx(0.0)
        assert m.checkpoint_overhead_seconds > 0.0
        assert m.wasted_task_seconds == pytest.approx(
            m.restart_overhead_seconds + m.checkpoint_overhead_seconds
        )

    def test_gives_up_after_max_restarts(self):
        m = replay_restarts(
            "j",
            work=100.0,
            crashes=[10.0 + 120.0 * i for i in range(5)],
            restart_overhead=30.0,
            max_restarts=2,
        )
        assert not m.completed
        assert m.elapsed == float("inf")
