"""Tests for the mrmpi compression cost model."""

import pytest

from repro.hadoop.job import JAVASORT_PROFILE, JobSpec
from repro.mrmpi import MrMpiConfig, run_mpid_job
from repro.util.units import GiB


def spec(gb=2):
    return JobSpec(
        "sort", input_bytes=gb * GiB, profile=JAVASORT_PROFILE, num_reduce_tasks=7
    )


class TestCompressionModel:
    def test_compression_shrinks_wire_bytes(self):
        base = run_mpid_job(spec(), config=MrMpiConfig(num_mappers=14, num_reducers=7))
        packed = run_mpid_job(
            spec(),
            config=MrMpiConfig(num_mappers=14, num_reducers=7, compress=True),
        )
        assert packed.total_sent_bytes < base.total_sent_bytes
        assert packed.total_sent_bytes == pytest.approx(
            base.total_sent_bytes * 0.4, rel=0.01
        )

    def test_codec_cpu_charged(self):
        """On a disk-bound sort, compression costs more CPU than the
        bandwidth it saves: job time must not improve."""
        base = run_mpid_job(spec(), config=MrMpiConfig(num_mappers=14, num_reducers=7))
        packed = run_mpid_job(
            spec(),
            config=MrMpiConfig(num_mappers=14, num_reducers=7, compress=True),
        )
        assert packed.elapsed >= base.elapsed

    def test_free_codec_with_full_ratio_is_noop_on_bytes(self):
        cfg = MrMpiConfig(
            num_mappers=14,
            num_reducers=7,
            compress=True,
            compression_ratio=1.0,
            compress_cpu_per_byte=0.0,
            decompress_cpu_per_byte=0.0,
        )
        base = run_mpid_job(spec(), config=MrMpiConfig(num_mappers=14, num_reducers=7))
        noop = run_mpid_job(spec(), config=cfg)
        assert noop.total_sent_bytes == pytest.approx(base.total_sent_bytes)
        assert noop.elapsed == pytest.approx(base.elapsed)

    def test_ratio_validation(self):
        with pytest.raises(ValueError, match="compression ratio"):
            MrMpiConfig(compression_ratio=0.0)
        with pytest.raises(ValueError, match="compression ratio"):
            MrMpiConfig(compression_ratio=1.5)
