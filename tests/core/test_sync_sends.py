"""The synchronous-send ablation mode: identical results, MPI_Ssend path."""

from collections import Counter

from repro.core import MapReduceJob, MpiDConfig, SummingCombiner, run_job

CORPUS = ["a b a c", "c c b", "a"] * 5


def _job(sync: bool, **kw):
    return MapReduceJob(
        mapper=lambda k, v, emit: [emit(w, 1) for w in v.split()],
        reducer=lambda k, vs, emit: emit(k, sum(vs)),
        num_mappers=3,
        num_reducers=2,
        config=MpiDConfig(synchronous_sends=sync, **kw),
    )


def expected():
    c = Counter()
    for line in CORPUS:
        c.update(line.split())
    return dict(c)


class TestSynchronousSends:
    def test_same_answer_as_buffered(self):
        buffered = run_job(_job(False), inputs=CORPUS).as_dict()
        synchronous = run_job(_job(True), inputs=CORPUS).as_dict()
        assert buffered == synchronous == expected()

    def test_sync_with_combiner(self):
        job = _job(True)
        job.combiner = SummingCombiner()
        assert run_job(job, inputs=CORPUS).as_dict() == expected()

    def test_sync_with_tiny_spills(self):
        """Many small synchronous sends: every array blocks on delivery."""
        result = run_job(
            _job(True, spill_threshold=32, partition_bytes=64), inputs=CORPUS
        )
        assert result.as_dict() == expected()

    def test_default_is_buffered(self):
        assert MpiDConfig().synchronous_sends is False
