"""Failure injection: user code that crashes must fail fast and clean."""

import pytest

from repro.core import MapReduceJob, run_job

CORPUS = ["a b", "c d", "e f"] * 3


class TestMapperFailures:
    def test_mapper_exception_propagates(self):
        def bad_map(k, v, emit):
            raise ValueError("mapper blew up")

        job = MapReduceJob(
            mapper=bad_map,
            reducer=lambda k, vs, emit: emit(k, vs),
            num_mappers=2,
            num_reducers=1,
        )
        with pytest.raises(ValueError, match="mapper blew up"):
            run_job(job, inputs=CORPUS, progress_timeout=5.0)

    def test_mapper_fails_on_specific_record(self):
        def flaky_map(k, v, emit):
            if v == "c d":
                raise RuntimeError("poison record")
            emit(v, 1)

        job = MapReduceJob(
            mapper=flaky_map,
            reducer=lambda k, vs, emit: emit(k, sum(vs)),
            num_mappers=3,
            num_reducers=2,
        )
        with pytest.raises(RuntimeError, match="poison record"):
            run_job(job, inputs=CORPUS, progress_timeout=5.0)


class TestReducerFailures:
    def test_reducer_exception_propagates(self):
        def bad_reduce(k, vs, emit):
            raise KeyError("reducer blew up")

        job = MapReduceJob(
            mapper=lambda k, v, emit: emit(v, 1),
            reducer=bad_reduce,
            num_mappers=2,
            num_reducers=2,
        )
        with pytest.raises(KeyError, match="reducer blew up"):
            run_job(job, inputs=CORPUS, progress_timeout=5.0)


class TestCombinerFailures:
    def test_combiner_exception_propagates(self):
        def bad_combine(a, b):
            raise ArithmeticError("combiner blew up")

        job = MapReduceJob(
            mapper=lambda k, v, emit: [emit(w, 1) for w in v.split()],
            reducer=lambda k, vs, emit: emit(k, sum(vs)),
            combiner=bad_combine,
            num_mappers=2,
            num_reducers=1,
        )
        with pytest.raises(ArithmeticError, match="combiner blew up"):
            run_job(job, inputs=CORPUS, progress_timeout=5.0)


class TestEmitMisuse:
    def test_unserializable_key_fails_loudly(self):
        # Keys must be stable-hashable for partitioning.
        job = MapReduceJob(
            mapper=lambda k, v, emit: emit({"dict": "key"}, 1),
            reducer=lambda k, vs, emit: emit(k, vs),
            num_mappers=1,
            num_reducers=2,  # >1 so the partitioner must hash the key
        )
        with pytest.raises(TypeError):
            run_job(job, inputs=["x"], progress_timeout=5.0)

    def test_mapper_emitting_nothing_is_fine(self):
        job = MapReduceJob(
            mapper=lambda k, v, emit: None,
            reducer=lambda k, vs, emit: emit(k, vs),
            num_mappers=2,
            num_reducers=2,
        )
        result = run_job(job, inputs=CORPUS)
        assert result.output == []
