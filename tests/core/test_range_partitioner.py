"""RangePartitioner tests: ordering, boundaries, sampling."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import MapReduceJob, RangePartitioner, run_job


class TestBoundaries:
    def test_routing_by_bisect(self):
        p = RangePartitioner(boundaries=[10, 20])
        assert p.partition(5, 3) == 0
        assert p.partition(10, 3) == 1  # boundary key goes right
        assert p.partition(15, 3) == 1
        assert p.partition(99, 3) == 2

    def test_unsorted_boundaries_rejected(self):
        with pytest.raises(ValueError, match="sorted"):
            RangePartitioner(boundaries=[20, 10])

    def test_duplicate_boundaries_rejected(self):
        with pytest.raises(ValueError, match="distinct"):
            RangePartitioner(boundaries=[5, 5])

    def test_too_few_partitions_rejected(self):
        p = RangePartitioner(boundaries=[1, 2, 3])
        with pytest.raises(ValueError, match="boundaries"):
            p.partition(0, 3)

    @given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=50), st.integers())
    def test_order_preservation(self, sample, key):
        """k1 <= k2 implies partition(k1) <= partition(k2)."""
        p = RangePartitioner.from_sample(sample, 4)
        n = 4
        assert p.partition(key, n) <= p.partition(key + 1, n)


class TestFromSample:
    def test_even_sample_even_cuts(self):
        p = RangePartitioner.from_sample(list(range(100)), 4)
        assert len(p.boundaries) == 3

    def test_single_partition_no_boundaries(self):
        p = RangePartitioner.from_sample([1, 2, 3], 1)
        assert p.boundaries == []
        assert p.partition(99, 1) == 0

    def test_skewed_sample_collapses_duplicates(self):
        p = RangePartitioner.from_sample([7] * 100, 4)
        assert len(p.boundaries) <= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            RangePartitioner.from_sample([1, 2], 0)

    @given(
        st.lists(st.integers(0, 10_000), min_size=10, max_size=200),
        st.integers(2, 8),
    )
    def test_rough_balance_on_uniform_sample(self, sample, n):
        p = RangePartitioner.from_sample(sample, n)
        counts = [0] * n
        for k in sample:
            counts[p.partition(k, n)] += 1
        assert sum(counts) == len(sample)


class TestEndToEnd:
    def test_reducer_ranges_disjoint(self):
        import random

        rng = random.Random(3)
        records = [(rng.randrange(10_000), None) for _ in range(500)]
        part = RangePartitioner.from_sample([k for k, _ in records[:100]], 3)
        per_reducer = {}

        def smap(k, v, emit):
            emit(k, v)

        def sreduce(k, vs, emit):
            emit(k, None)

        job = MapReduceJob(
            mapper=smap,
            reducer=sreduce,
            num_mappers=3,
            num_reducers=3,
            partitioner=part,
        )
        result = run_job(job, inputs=records)
        for key, _ in result.output:
            per_reducer.setdefault(part.partition(key, 3), []).append(key)
        present = sorted(per_reducer)
        for a, b in zip(present, present[1:]):
            assert max(per_reducer[a]) < min(per_reducer[b])
