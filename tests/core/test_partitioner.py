"""Partitioner tests: range, determinism, balance, Hadoop compatibility."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.partitioner import HashPartitioner, ModPartitioner

keys = st.one_of(st.text(max_size=32), st.integers(), st.binary(max_size=16))


@pytest.mark.parametrize("cls", [HashPartitioner, ModPartitioner])
class TestCommon:
    @given(key=keys, n=st.integers(1, 100))
    def test_in_range(self, cls, key, n):
        assert 0 <= cls().partition(key, n) < n

    @given(key=keys, n=st.integers(1, 100))
    def test_deterministic(self, cls, key, n):
        p = cls()
        assert p.partition(key, n) == p.partition(key, n)

    def test_single_partition(self, cls):
        assert cls().partition("anything", 1) == 0

    def test_zero_partitions_rejected(self, cls):
        with pytest.raises(ValueError):
            cls().partition("k", 0)


class TestBalance:
    def test_hash_partitioner_roughly_uniform(self):
        """10k distinct string keys over 8 partitions: no partition may be
        empty or hold more than twice its fair share."""
        p = HashPartitioner()
        counts = [0] * 8
        for i in range(10_000):
            counts[p.partition(f"key-{i}", 8)] += 1
        assert min(counts) > 0
        assert max(counts) < 2 * (10_000 / 8)


class TestModPartitioner:
    def test_matches_java_hashcode_mod(self):
        # "hello".hashCode() == 99162322; 99162322 % 7 == 4.
        assert ModPartitioner().partition("hello", 7) == 99162322 % 7

    def test_negative_hashcode_masked(self):
        # "polygenelubricants".hashCode() == Integer.MIN_VALUE; after the
        # & MAX_VALUE mask Hadoop uses, the partition is 0 for any n that
        # divides 0... the mask makes it 0, so partition == 0 % n == 0.
        assert ModPartitioner().partition("polygenelubricants", 5) == 0

    def test_non_string_keys_fall_back(self):
        assert 0 <= ModPartitioner().partition(12345, 9) < 9
