"""Data realignment tests: fixed-size arrays, roundtrip, value sorting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partitioner import HashPartitioner
from repro.core.realign import PartitionWriter, realign, reverse_realign

kv_lists = st.lists(
    st.tuples(st.text(max_size=12), st.lists(st.integers(), max_size=5)),
    max_size=30,
)


class TestPartitionWriter:
    def test_single_record(self):
        w = PartitionWriter(capacity=1024)
        w.append("k", [1])
        arrays = w.close()
        assert len(arrays) == 1
        assert list(reverse_realign(arrays[0])) == [("k", [1])]

    def test_respects_capacity(self):
        w = PartitionWriter(capacity=64)
        for i in range(20):
            w.append(f"key{i}", "v" * 10)
        arrays = w.close()
        assert len(arrays) > 1
        # Every array except oversized singletons fits the capacity.
        for a in arrays:
            records = list(reverse_realign(a))
            if len(records) > 1:
                assert len(a) <= 64

    def test_oversized_record_gets_own_array(self):
        w = PartitionWriter(capacity=32)
        w.append("big", "x" * 500)
        w.append("small", "y")
        arrays = w.close()
        assert len(arrays) == 2
        assert list(reverse_realign(arrays[0]))[0][0] == "big"

    def test_close_is_drainig(self):
        w = PartitionWriter(capacity=128)
        w.append("a", 1)
        assert len(w.close()) == 1
        assert w.close() == []

    def test_counters(self):
        w = PartitionWriter(capacity=1024)
        w.append("a", 1)
        w.append("b", 2)
        assert w.records_written == 2
        assert w.bytes_written > 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            PartitionWriter(0)


class TestRealign:
    def test_partition_count(self):
        arrays = realign([("a", [1])], HashPartitioner(), 4, 1024)
        assert len(arrays) == 4
        non_empty = [p for p in arrays if p]
        assert len(non_empty) == 1

    @settings(max_examples=50, deadline=None)
    @given(items=kv_lists, n=st.integers(1, 8))
    def test_roundtrip_preserves_everything(self, items, n):
        """Realign + reverse realign across all partitions loses nothing
        and invents nothing (multiset equality)."""
        arrays = realign(items, HashPartitioner(), n, partition_bytes=128)
        recovered = [
            rec for plist in arrays for a in plist for rec in reverse_realign(a)
        ]
        key_fn = lambda kv: (kv[0], kv[1])
        assert sorted(recovered, key=repr) == sorted(items, key=repr)

    @settings(max_examples=30, deadline=None)
    @given(items=kv_lists, n=st.integers(1, 8))
    def test_records_land_in_their_hash_partition(self, items, n):
        part = HashPartitioner()
        arrays = realign(items, part, n, partition_bytes=256)
        for p, plist in enumerate(arrays):
            for a in plist:
                for key, _ in reverse_realign(a):
                    assert part.partition(key, n) == p

    def test_sort_values(self):
        arrays = realign(
            [("k", [3, 1, 2])], HashPartitioner(), 1, 1024, sort_values=True
        )
        assert list(reverse_realign(arrays[0][0])) == [("k", [1, 2, 3])]

    def test_sort_values_with_key(self):
        arrays = realign(
            [("k", ["bb", "a", "ccc"])],
            HashPartitioner(),
            1,
            1024,
            sort_values=True,
            value_sort_key=len,
        )
        assert list(reverse_realign(arrays[0][0])) == [("k", ["a", "bb", "ccc"])]

    def test_sort_values_ignores_non_lists(self):
        arrays = realign(
            [("k", 42)], HashPartitioner(), 1, 1024, sort_values=True
        )
        assert list(reverse_realign(arrays[0][0])) == [("k", 42)]

    def test_zero_partitions_rejected(self):
        with pytest.raises(ValueError):
            realign([], HashPartitioner(), 0, 1024)

    def test_bad_partitioner_detected(self):
        class Broken(HashPartitioner):
            def partition(self, key, n):
                return n  # out of range

        with pytest.raises(ValueError, match="outside"):
            realign([("k", 1)], Broken(), 2, 1024)
