"""Integration tests: full MapReduce jobs through MPI-D vs serial reference."""

from collections import Counter

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import MapReduceJob, MpiDConfig, SummingCombiner, run_job


def wc_map(key, value, emit):
    for word in value.split():
        emit(word, 1)


def wc_reduce(key, values, emit):
    emit(key, sum(values))


def wordcount_job(**kw):
    defaults = dict(mapper=wc_map, reducer=wc_reduce, num_mappers=3, num_reducers=2)
    defaults.update(kw)
    return MapReduceJob(**defaults)


CORPUS = [
    "the quick brown fox jumps over the lazy dog",
    "the dog barks",
    "a quick brown dog",
    "",
    "fox fox fox",
]


def serial_wordcount(lines):
    c = Counter()
    for line in lines:
        c.update(line.split())
    return dict(c)


class TestWordCount:
    def test_matches_serial_reference(self):
        result = run_job(wordcount_job(), inputs=CORPUS)
        assert result.as_dict() == serial_wordcount(CORPUS)

    def test_with_summing_combiner(self):
        result = run_job(
            wordcount_job(combiner=SummingCombiner()), inputs=CORPUS
        )
        assert result.as_dict() == serial_wordcount(CORPUS)

    def test_with_callable_combiner(self):
        result = run_job(
            wordcount_job(combiner=lambda a, b: a + b), inputs=CORPUS
        )
        assert result.as_dict() == serial_wordcount(CORPUS)

    @pytest.mark.parametrize("m,r", [(1, 1), (2, 3), (5, 1), (4, 4)])
    def test_any_parallelism_same_answer(self, m, r):
        result = run_job(
            wordcount_job(num_mappers=m, num_reducers=r), inputs=CORPUS
        )
        assert result.as_dict() == serial_wordcount(CORPUS)

    def test_output_sorted_by_key(self):
        result = run_job(wordcount_job(), inputs=CORPUS)
        keys = [k for k, _ in result.output]
        assert keys == sorted(keys)

    def test_tiny_spill_threshold_same_answer(self):
        cfg = MpiDConfig(spill_threshold=32, partition_bytes=64)
        result = run_job(wordcount_job(config=cfg), inputs=CORPUS)
        assert result.as_dict() == serial_wordcount(CORPUS)

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        lines=st.lists(
            st.text(alphabet="ab c", max_size=30), min_size=0, max_size=12
        ),
        m=st.integers(1, 4),
        r=st.integers(1, 3),
    )
    def test_property_equivalence_with_serial(self, lines, m, r):
        result = run_job(
            wordcount_job(num_mappers=m, num_reducers=r), inputs=lines
        )
        assert result.as_dict() == serial_wordcount(lines)


class TestOtherJobs:
    def test_inverted_index(self):
        docs = [("doc1", "apple banana"), ("doc2", "banana cherry"), ("doc3", "apple")]

        def imap(doc_id, text, emit):
            for word in text.split():
                emit(word, doc_id)

        def ireduce(word, doc_ids, emit):
            emit(word, sorted(set(doc_ids)))

        job = MapReduceJob(mapper=imap, reducer=ireduce, num_mappers=2, num_reducers=2)
        result = run_job(job, inputs=docs)
        assert result.as_dict() == {
            "apple": ["doc1", "doc3"],
            "banana": ["doc1", "doc2"],
            "cherry": ["doc2"],
        }

    def test_sort_values_option(self):
        job = MapReduceJob(
            mapper=lambda k, v, emit: emit("all", v),
            reducer=lambda k, vs, emit: emit(k, vs),
            num_mappers=1,
            num_reducers=1,
            config=MpiDConfig(sort_values=True),
        )
        result = run_job(job, inputs=[5, 3, 9, 1])
        assert result.as_dict()["all"] == [1, 3, 5, 9]

    def test_explicit_splits(self):
        job = wordcount_job(num_mappers=2, num_reducers=1)
        result = run_job(
            job, splits=[[(0, "x y")], [(1, "y z")]]
        )
        assert result.as_dict() == {"x": 1, "y": 2, "z": 1}

    def test_numeric_aggregation(self):
        """Average temperature per station — a classic MR pattern."""
        readings = [("sta", 10.0), ("stb", 20.0), ("sta", 30.0), ("stb", 40.0)]

        def rmap(k, v, emit):
            emit(k, v)

        def rreduce(k, vs, emit):
            emit(k, sum(vs) / len(vs))

        job = MapReduceJob(mapper=rmap, reducer=rreduce, num_mappers=2, num_reducers=2)
        assert run_job(job, inputs=readings).as_dict() == {"sta": 20.0, "stb": 30.0}


class TestJobValidation:
    def test_bad_parallelism(self):
        with pytest.raises(ValueError):
            MapReduceJob(mapper=wc_map, reducer=wc_reduce, num_mappers=0)
        with pytest.raises(ValueError):
            MapReduceJob(mapper=wc_map, reducer=wc_reduce, num_reducers=0)

    def test_non_callable(self):
        with pytest.raises(TypeError):
            MapReduceJob(mapper="nope", reducer=wc_reduce)

    def test_inputs_xor_splits(self):
        job = wordcount_job()
        with pytest.raises(ValueError, match="exactly one"):
            run_job(job)
        with pytest.raises(ValueError, match="exactly one"):
            run_job(job, inputs=[], splits=[])

    def test_split_count_mismatch(self):
        with pytest.raises(ValueError, match="splits"):
            run_job(wordcount_job(num_mappers=3), splits=[[], []])

    def test_world_layout(self):
        job = wordcount_job(num_mappers=3, num_reducers=2)
        assert job.world_size == 6
        assert job.mapper_ranks == [1, 2, 3]
        assert job.reducer_ranks == [4, 5]

    def test_empty_input(self):
        result = run_job(wordcount_job(), inputs=[])
        assert result.output == []
        assert len(result) == 0

    def test_result_stats_populated(self):
        result = run_job(wordcount_job(), inputs=CORPUS)
        assert len(result.mapper_stats) == 3
        assert len(result.reducer_stats) == 2
        assert sum(s["records_sent"] for s in result.mapper_stats) == sum(
            len(line.split()) for line in CORPUS
        )
