"""Tests for the Table-II C-style API and the pythonic context."""

import pytest

from repro.core.api import (
    MPI_D_Finalize,
    MPI_D_Init,
    MPI_D_Recv,
    MPI_D_Send,
    MpiDContext,
)
from repro.mplib import Runtime


def run(world_size, main, timeout=5.0):
    return Runtime(world_size, progress_timeout=timeout).run(main)


class TestCStyleInterface:
    def test_wordcount_shaped_flow(self):
        """The paper's Figure-5 WordCount written against Table II."""

        corpus = ["the quick fox", "the lazy dog", "the fox"]

        def main(comm):
            if comm.rank < 3:  # mappers
                MPI_D_Init(comm, role="mapper", reducer_ranks=[3])
                for word in corpus[comm.rank].split():
                    MPI_D_Send(word, 1)
                MPI_D_Finalize()
                return None
            MPI_D_Init(comm, role="reducer", num_mappers=3, partition=0)
            counts = {}
            while True:
                item = MPI_D_Recv()
                if item is None:
                    break
                key, values = item
                counts[key] = sum(values)
            MPI_D_Finalize()
            return counts

        results = run(4, main)
        assert results[3] == {
            "the": 3,
            "quick": 1,
            "fox": 2,
            "lazy": 1,
            "dog": 1,
        }

    def test_double_init_rejected(self):
        def main(comm):
            MPI_D_Init(comm, role="mapper", reducer_ranks=[0])
            with pytest.raises(RuntimeError, match="twice"):
                MPI_D_Init(comm, role="mapper", reducer_ranks=[0])
            MPI_D_Finalize()
            # Drain our own EOS so nothing lingers.
            comm.recv(source=0)
            return "ok"

        assert run(1, main) == ["ok"]

    def test_send_without_init(self):
        def main(comm):
            with pytest.raises(RuntimeError, match="MPI_D_Init"):
                MPI_D_Send("k", 1)
            return "ok"

        assert run(1, main) == ["ok"]

    def test_finalize_without_init(self):
        def main(comm):
            with pytest.raises(RuntimeError, match="MPI_D_Init"):
                MPI_D_Finalize()
            return "ok"

        assert run(1, main) == ["ok"]

    def test_init_returns_context_and_releases(self):
        def main(comm):
            ctx = MPI_D_Init(comm, role="mapper", reducer_ranks=[0])
            assert isinstance(ctx, MpiDContext)
            MPI_D_Finalize()
            ctx2 = MPI_D_Init(comm, role="mapper", reducer_ranks=[0])
            MPI_D_Finalize()
            comm.recv(source=0)
            comm.recv(source=0)
            return "ok"

        assert run(1, main) == ["ok"]


class TestContextObject:
    def test_role_validation(self):
        def main(comm):
            with pytest.raises(ValueError, match="role"):
                MpiDContext(comm, role="coordinator")
            with pytest.raises(ValueError, match="reducer_ranks"):
                MpiDContext(comm, role="mapper")
            with pytest.raises(ValueError, match="num_mappers"):
                MpiDContext(comm, role="reducer")
            return "ok"

        assert run(1, main) == ["ok"]

    def test_wrong_side_calls(self):
        def main(comm):
            if comm.rank == 0:
                ctx = MpiDContext(comm, role="mapper", reducer_ranks=[1])
                with pytest.raises(RuntimeError, match="mapper context"):
                    ctx.recv()
                ctx.finalize()
                return "ok"
            ctx = MpiDContext(comm, role="reducer", num_mappers=1, partition=0)
            with pytest.raises(RuntimeError, match="reducer context"):
                ctx.send("k", 1)
            list_all = []
            while True:
                item = ctx.recv()
                if item is None:
                    break
                list_all.append(item)
            return list_all

        results = run(2, main)
        assert results == ["ok", []]

    def test_context_manager_finalizes(self):
        def main(comm):
            if comm.rank == 0:
                with MpiDContext(comm, role="mapper", reducer_ranks=[1]) as ctx:
                    ctx.send("x", 1)
                # exiting the with-block must have sent EOS
                return ctx.stats
            ctx = MpiDContext(comm, role="reducer", num_mappers=1, partition=0)
            out = []
            while (item := ctx.recv()) is not None:
                out.append(item)
            return out

        results = run(2, main)
        assert results[0]["records_sent"] == 1
        assert results[1] == [("x", [1])]

    def test_send_after_context_finalize(self):
        def main(comm):
            if comm.rank == 0:
                ctx = MpiDContext(comm, role="mapper", reducer_ranks=[1])
                ctx.finalize()
                with pytest.raises(RuntimeError):
                    ctx.send("k", 1)
                return "ok"
            ctx = MpiDContext(comm, role="reducer", num_mappers=1, partition=0)
            while ctx.recv() is not None:
                pass
            return "ok"

        assert run(2, main) == ["ok", "ok"]

    def test_stats_shapes(self):
        def main(comm):
            if comm.rank == 0:
                with MpiDContext(comm, role="mapper", reducer_ranks=[1]) as ctx:
                    ctx.send("a", 1)
                return set(ctx.stats)
            ctx = MpiDContext(comm, role="reducer", num_mappers=1, partition=0)
            while ctx.recv() is not None:
                pass
            return set(ctx.stats)

        mstats, rstats = run(2, main)
        assert {"records_sent", "bytes_sent", "messages_sent", "spills"} == mstats
        assert {"arrays_received", "bytes_received", "senders_done"} == rstats
