"""Job-chain (multi-stage pipeline) tests."""

from collections import Counter

import pytest

from repro.core import JobChain, MapReduceJob, top_k_chain

CORPUS = [
    "apple banana apple cherry",
    "banana apple banana",
    "cherry apple",
]


class TestTopKChain:
    def test_top_1(self):
        result = top_k_chain(1).run(CORPUS)
        assert result.final.as_dict() == {"apple": 4}

    def test_top_2_ordering(self):
        result = top_k_chain(2).run(CORPUS)
        assert result.final.as_dict() == {"apple": 4, "banana": 3}

    def test_k_larger_than_vocabulary(self):
        result = top_k_chain(10).run(CORPUS)
        counts = Counter(w for line in CORPUS for w in line.split())
        assert result.final.as_dict() == dict(counts)

    def test_intermediate_stage_preserved(self):
        result = top_k_chain(1).run(CORPUS)
        assert len(result) == 2
        wordcount = result.stages[0].as_dict()
        assert wordcount["cherry"] == 2

    def test_k_validation(self):
        with pytest.raises(ValueError):
            top_k_chain(0)


class TestJobChain:
    def _identity_job(self, name="stage"):
        return MapReduceJob(
            mapper=lambda k, v, emit: emit(k, v),
            reducer=lambda k, vs, emit: emit(k, vs[0]),
            num_mappers=2,
            num_reducers=1,
            name=name,
        )

    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError, match="no stages"):
            JobChain().run([("a", 1)])

    def test_transform_between_stages(self):
        chain = JobChain()
        chain.add(
            self._identity_job("first"),
            transform=lambda res: [(k, v * 10) for k, v in res.output],
        )
        chain.add(self._identity_job("second"))
        result = chain.run([("x", 1), ("y", 2)])
        assert result.final.as_dict() == {"x": 10, "y": 20}

    def test_add_returns_self(self):
        chain = JobChain()
        assert chain.add(self._identity_job()) is chain

    def test_three_stage_chain(self):
        chain = JobChain()
        for i in range(3):
            chain.add(
                MapReduceJob(
                    mapper=lambda k, v, emit: emit(k, v + 1),
                    reducer=lambda k, vs, emit: emit(k, vs[0]),
                    num_mappers=1,
                    num_reducers=1,
                )
            )
        result = chain.run([("n", 0)])
        assert result.final.as_dict() == {"n": 3}
        assert len(result) == 3
