"""Engine tests: the full send->wire->recv pipeline on the real runtime."""

import pytest

from repro.core.config import MpiDConfig
from repro.core.combiner import SummingCombiner
from repro.core.engine import MapOutputEngine, ReduceInputEngine
from repro.mplib import Runtime


def run(world_size, main, timeout=5.0):
    return Runtime(world_size, progress_timeout=timeout).run(main)


def _pipeline(num_mappers, num_reducers, pairs_for_mapper, config=None, combiner=None):
    """World: mappers are ranks [0..M), reducers [M..M+R)."""
    config = config or MpiDConfig()

    def main(comm):
        reducer_ranks = list(range(num_mappers, num_mappers + num_reducers))
        if comm.rank < num_mappers:
            eng = MapOutputEngine(
                comm, reducer_ranks, config=config, combiner=combiner
            )
            for k, v in pairs_for_mapper(comm.rank):
                eng.send(k, v)
            eng.finalize()
            return ("mapper", eng.records_sent, eng.messages_sent)
        eng = ReduceInputEngine(
            comm,
            num_senders=num_mappers,
            partition=comm.rank - num_mappers,
            config=config,
            combiner=combiner,
        )
        return ("reducer", list(eng))

    return run(num_mappers + num_reducers, main)


class TestSingleReducer:
    def test_all_pairs_arrive_grouped(self):
        results = _pipeline(
            2, 1, lambda r: [("a", r), ("b", r * 10)]
        )
        kind, items = results[2]
        assert kind == "reducer"
        d = dict(items)
        assert sorted(d["a"]) == [0, 1]
        assert sorted(d["b"]) == [0, 10]

    def test_sorted_key_order(self):
        results = _pipeline(1, 1, lambda r: [("z", 1), ("a", 1), ("m", 1)])
        _, items = results[1]
        assert [k for k, _ in items] == ["a", "m", "z"]

    def test_unsorted_when_disabled(self):
        cfg = MpiDConfig(sort_keys=False)
        results = _pipeline(
            1, 1, lambda r: [("z", 1), ("a", 1)], config=cfg
        )
        _, items = results[1]
        assert {k for k, _ in items} == {"a", "z"}

    def test_empty_mapper_still_terminates(self):
        results = _pipeline(3, 1, lambda r: [])
        assert results[3] == ("reducer", [])


class TestMultiReducer:
    def test_keys_partitioned_consistently(self):
        results = _pipeline(
            3, 4, lambda r: [(f"key{i}", r) for i in range(20)]
        )
        seen = {}
        for out in results[3:]:
            _, items = out
            for k, values in items:
                assert k not in seen, "key appeared on two reducers"
                seen[k] = values
        assert len(seen) == 20
        for k, values in seen.items():
            assert sorted(values) == [0, 1, 2]

    def test_spill_many_small_partitions(self):
        """Tiny spill threshold and partition arrays force many messages."""
        cfg = MpiDConfig(spill_threshold=64, partition_bytes=64)
        results = _pipeline(
            2, 2, lambda r: [(f"k{i}", "v" * 20) for i in range(50)], config=cfg
        )
        _, _, messages = results[0]
        assert messages > 10  # really did fragment into many arrays
        total = sum(len(items) for _, items in results[2:])
        assert total == 50

    def test_combiner_reduces_wire_traffic(self):
        def pairs(r):
            return [("word", 1)] * 500

        plain = _pipeline(1, 1, pairs)
        combined = _pipeline(1, 1, pairs, combiner=SummingCombiner())
        # Same answer...
        assert dict(plain[1][1])["word"] == [1] * 500
        assert dict(combined[1][1])["word"] == [500]
        # ...fewer messages with combining.
        assert combined[0][2] <= plain[0][2]


class TestEngineErrors:
    def test_send_after_finalize(self):
        def main(comm):
            if comm.rank == 0:
                eng = MapOutputEngine(comm, [1])
                eng.finalize()
                with pytest.raises(RuntimeError, match="Finalize"):
                    eng.send("k", 1)
                return "checked"
            eng = ReduceInputEngine(comm, num_senders=1, partition=0)
            return list(eng)

        assert run(2, main)[0] == "checked"

    def test_finalize_idempotent(self):
        def main(comm):
            if comm.rank == 0:
                eng = MapOutputEngine(comm, [1])
                eng.send("k", 1)
                eng.finalize()
                eng.finalize()
                return eng.messages_sent
            eng = ReduceInputEngine(comm, num_senders=1, partition=0)
            return list(eng)

        results = run(2, main)
        assert results[0] == 2  # one data array + one EOS, not two EOS
        assert results[1] == [("k", [1])]

    def test_validation(self):
        def main(comm):
            with pytest.raises(ValueError, match="reducer rank"):
                MapOutputEngine(comm, [])
            with pytest.raises(ValueError, match="duplicate"):
                MapOutputEngine(comm, [0, 0])
            with pytest.raises(ValueError, match="sender"):
                ReduceInputEngine(comm, num_senders=0, partition=0)
            return "ok"

        assert run(1, main) == ["ok"]

    def test_stats_accounting(self):
        def main(comm):
            if comm.rank == 0:
                eng = MapOutputEngine(comm, [1])
                for i in range(10):
                    eng.send(f"k{i}", i)
                eng.finalize()
                return (eng.records_sent, eng.bytes_sent)
            eng = ReduceInputEngine(comm, num_senders=1, partition=0)
            items = list(eng)
            return (len(items), eng.bytes_received, eng.arrays_received)

        sent, received = run(2, main)
        assert sent[0] == 10
        assert received[0] == 10
        assert received[1] == sent[1]  # bytes in == bytes out
        assert received[2] >= 1
