"""Hash-table buffer tests: combining, size accounting, spill trigger."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.combiner import GroupingCombiner, SummingCombiner
from repro.core.hashbuffer import HashTableBuffer
from repro.util.serde import encode_record


class TestCombining:
    def test_grouping_accumulates(self):
        buf = HashTableBuffer(GroupingCombiner())
        buf.add("k", 1)
        buf.add("k", 2)
        buf.add("other", 9)
        assert buf.peek("k") == [1, 2]
        assert buf.peek("other") == [9]
        assert len(buf) == 2

    def test_summing_collapses(self):
        buf = HashTableBuffer(SummingCombiner())
        for _ in range(100):
            buf.add("word", 1)
        assert buf.peek("word") == 100
        assert len(buf) == 1

    def test_contains(self):
        buf = HashTableBuffer()
        buf.add("a", 1)
        assert "a" in buf
        assert "b" not in buf


class TestSizeAccounting:
    def test_starts_empty(self):
        buf = HashTableBuffer()
        assert buf.approx_bytes == 0

    def test_grows_with_adds(self):
        buf = HashTableBuffer()
        buf.add("key", "value")
        first = buf.approx_bytes
        assert first > 0
        buf.add("key", "value2")
        assert buf.approx_bytes > first

    def test_summing_combiner_size_stays_flat(self):
        """1000 (word, 1) pairs with a summing combiner must not grow the
        buffer 1000x — that's the whole point of combining."""
        buf = HashTableBuffer(SummingCombiner())
        buf.add("word", 1)
        one = buf.approx_bytes
        for _ in range(999):
            buf.add("word", 1)
        assert buf.approx_bytes < one * 3

    def test_spill_trigger(self):
        buf = HashTableBuffer()
        assert not buf.should_spill(100)
        while not buf.should_spill(100):
            buf.add("k", "x" * 10)
        assert buf.approx_bytes >= 100

    @given(st.lists(st.tuples(st.text(max_size=8), st.integers(0, 100)), max_size=50))
    def test_grouping_estimate_tracks_reality(self, pairs):
        """The estimate must stay within a small factor of the true
        serialized size (it feeds the spill decision)."""
        buf = HashTableBuffer(GroupingCombiner())
        for k, v in pairs:
            buf.add(k, v)
        true_size = sum(
            len(encode_record(k, state)) for k, state in buf._table.items()
        )
        # Estimate counts keys + values but not the list container header:
        # within 2x either way.
        if true_size:
            assert true_size / 2 <= buf.approx_bytes <= true_size * 2
        else:
            assert buf.approx_bytes == 0


class TestDrain:
    def test_drain_empties_and_resets(self):
        buf = HashTableBuffer()
        buf.add("a", 1)
        buf.add("b", 2)
        items = dict(buf.drain())
        assert items == {"a": [1], "b": [2]}
        assert len(buf) == 0
        assert buf.approx_bytes == 0
        assert buf.spills == 1

    def test_insertion_order_preserved(self):
        buf = HashTableBuffer()
        for k in ["z", "a", "m"]:
            buf.add(k, 0)
        assert [k for k, _ in buf.drain()] == ["z", "a", "m"]

    def test_reusable_after_drain(self):
        buf = HashTableBuffer(SummingCombiner())
        buf.add("x", 1)
        list(buf.drain())
        buf.add("x", 5)
        assert buf.peek("x") == 5

    def test_pairs_added_counter(self):
        buf = HashTableBuffer()
        for i in range(7):
            buf.add("k", i)
        assert buf.pairs_added == 7
