"""Spill compression (the §IV-A realignment improvement) tests."""

from collections import Counter

from repro.core import MapReduceJob, MpiDConfig, run_job

# Repetitive text compresses well — the interesting case.
CORPUS = ["alpha beta gamma delta " * 8] * 12


def _job(compress: bool, **cfg_kw):
    return MapReduceJob(
        mapper=lambda k, v, emit: [emit(w, 1) for w in v.split()],
        reducer=lambda k, vs, emit: emit(k, sum(vs)),
        num_mappers=3,
        num_reducers=2,
        config=MpiDConfig(compress=compress, **cfg_kw),
    )


def expected():
    c = Counter()
    for line in CORPUS:
        c.update(line.split())
    return dict(c)


class TestCompression:
    def test_same_answer(self):
        plain = run_job(_job(False), inputs=CORPUS)
        packed = run_job(_job(True), inputs=CORPUS)
        assert plain.as_dict() == packed.as_dict() == expected()

    def test_fewer_wire_bytes(self):
        plain = run_job(_job(False), inputs=CORPUS)
        packed = run_job(_job(True), inputs=CORPUS)
        plain_bytes = sum(s["bytes_sent"] for s in plain.mapper_stats)
        packed_bytes = sum(s["bytes_sent"] for s in packed.mapper_stats)
        assert packed_bytes < plain_bytes

    def test_receiver_counts_wire_bytes(self):
        packed = run_job(_job(True), inputs=CORPUS)
        sent = sum(s["bytes_sent"] for s in packed.mapper_stats)
        received = sum(s["bytes_received"] for s in packed.reducer_stats)
        assert received == sent

    def test_compression_composes_with_sync_sends(self):
        result = run_job(
            _job(True, synchronous_sends=True, spill_threshold=256),
            inputs=CORPUS,
        )
        assert result.as_dict() == expected()

    def test_compression_composes_with_sorted_values(self):
        job = _job(True, sort_values=True)
        job.reducer = lambda k, vs, emit: emit(k, vs)
        result = run_job(job, inputs=CORPUS[:2])
        for _, values in result.output:
            assert values == sorted(values)
