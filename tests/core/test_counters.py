"""User-counter (Hadoop Counters analogue) tests."""

from repro.core import MapReduceJob, run_job

CORPUS = ["good good bad", "good skip", "bad bad bad"]


def counting_map(key, line, emit):
    for word in line.split():
        if word == "skip":
            emit.count("records.skipped")
            continue
        emit.count("records.mapped")
        emit(word, 1)


def counting_reduce(word, counts, emit):
    emit.count("keys.reduced")
    if sum(counts) > 2:
        emit.count("keys.hot")
    emit(word, sum(counts))


def run(m=2, r=2):
    job = MapReduceJob(
        mapper=counting_map, reducer=counting_reduce, num_mappers=m, num_reducers=r
    )
    return run_job(job, inputs=CORPUS)


class TestCounters:
    def test_map_side_counters_aggregate(self):
        result = run()
        assert result.counters["records.mapped"] == 7
        assert result.counters["records.skipped"] == 1

    def test_reduce_side_counters(self):
        result = run()
        assert result.counters["keys.reduced"] == 2  # good, bad
        assert result.counters["keys.hot"] == 2  # good=3, bad=4

    def test_counters_independent_of_parallelism(self):
        assert run(1, 1).counters == run(4, 3).counters

    def test_no_counters_means_empty_dict(self):
        job = MapReduceJob(
            mapper=lambda k, v, emit: emit(v, 1),
            reducer=lambda k, vs, emit: emit(k, sum(vs)),
            num_mappers=2,
            num_reducers=1,
        )
        assert run_job(job, inputs=CORPUS).counters == {}

    def test_custom_amount(self):
        job = MapReduceJob(
            mapper=lambda k, v, emit: emit.count("bytes", len(v)),
            reducer=lambda k, vs, emit: None,
            num_mappers=2,
            num_reducers=1,
        )
        result = run_job(job, inputs=CORPUS)
        assert result.counters["bytes"] == sum(len(line) for line in CORPUS)

    def test_emit_still_plain_callable(self):
        """Old-style jobs that never touch counters keep working."""
        job = MapReduceJob(
            mapper=lambda k, v, emit: [emit(w, 1) for w in v.split()],
            reducer=lambda k, vs, emit: emit(k, sum(vs)),
            num_mappers=2,
            num_reducers=2,
        )
        result = run_job(job, inputs=CORPUS)
        assert result.as_dict()["bad"] == 4
