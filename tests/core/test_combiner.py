"""Combiner algebra tests, including the associativity property that
makes results independent of spill timing."""

import operator

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.combiner import (
    GroupingCombiner,
    ReducingCombiner,
    SummingCombiner,
    make_combiner,
)


class TestGroupingCombiner:
    def test_paper_example(self):
        """<K1,V1>, <K1,V1'> -> <K1, {V1, V1'}>."""
        c = GroupingCombiner()
        state = c.unit("V1")
        state = c.add(state, "V1'")
        assert c.finalize(state) == ["V1", "V1'"]

    def test_merge_concatenates_in_order(self):
        c = GroupingCombiner()
        assert c.merge([1, 2], [3]) == [1, 2, 3]

    @given(st.lists(st.integers(), min_size=1), st.lists(st.integers(), min_size=1))
    def test_merge_equals_sequential_adds(self, xs, ys):
        c = GroupingCombiner()

        def fold(values):
            state = c.unit(values[0])
            for v in values[1:]:
                state = c.add(state, v)
            return state

        assert c.merge(fold(list(xs)), fold(list(ys))) == xs + ys


class TestReducingCombiner:
    def test_sum(self):
        c = SummingCombiner()
        state = c.unit(3)
        state = c.add(state, 4)
        assert c.finalize(state) == [7]

    def test_merge(self):
        c = SummingCombiner()
        assert c.merge(10, 5) == 15

    def test_custom_fn(self):
        c = ReducingCombiner(max)
        state = c.unit(2)
        state = c.add(state, 9)
        state = c.add(state, 4)
        assert c.finalize(state) == [9]

    def test_rejects_non_callable(self):
        with pytest.raises(TypeError):
            ReducingCombiner("not-a-function")

    @given(st.lists(st.integers(), min_size=2, max_size=20), st.integers(1, 10))
    def test_split_invariance(self, values, cut_raw):
        """Folding values in one go == folding two halves then merging —
        the property that makes spill timing irrelevant."""
        cut = cut_raw % len(values)
        if cut == 0:
            cut = 1
        c = SummingCombiner()

        def fold(vals):
            state = c.unit(vals[0])
            for v in vals[1:]:
                state = c.add(state, v)
            return state

        whole = fold(values)
        merged = c.merge(fold(values[:cut]), fold(values[cut:]))
        assert whole == merged == sum(values)


class TestMakeCombiner:
    def test_none_gives_grouping(self):
        assert isinstance(make_combiner(None), GroupingCombiner)

    def test_callable_wrapped(self):
        c = make_combiner(operator.add)
        assert isinstance(c, ReducingCombiner)
        assert c.finalize(c.add(c.unit(1), 2)) == [3]

    def test_combiner_passthrough(self):
        c = SummingCombiner()
        assert make_combiner(c) is c

    def test_garbage_rejected(self):
        with pytest.raises(TypeError):
            make_combiner(42)
