"""Secondary sort: custom value ordering through MpiDConfig.value_sort_key."""

from repro.core import MapReduceJob, MpiDConfig, run_job


class TestSecondarySort:
    def test_values_sorted_by_custom_key(self):
        """Classic pattern: per-station readings ordered by timestamp."""
        readings = [
            ("sta", (3, 30.0)),
            ("sta", (1, 10.0)),
            ("stb", (2, 99.0)),
            ("sta", (2, 20.0)),
            ("stb", (1, 11.0)),
        ]
        job = MapReduceJob(
            mapper=lambda k, v, emit: emit(k, v),
            reducer=lambda k, vs, emit: emit(k, vs),
            num_mappers=2,
            num_reducers=2,
            config=MpiDConfig(sort_values=True, value_sort_key=lambda r: r[0]),
        )
        result = run_job(job, inputs=readings)
        out = result.as_dict()
        assert out["sta"] == [(1, 10.0), (2, 20.0), (3, 30.0)]
        assert out["stb"] == [(1, 11.0), (2, 99.0)]

    def test_reverse_order_via_key(self):
        job = MapReduceJob(
            mapper=lambda k, v, emit: emit("all", v),
            reducer=lambda k, vs, emit: emit(k, vs),
            num_mappers=3,
            num_reducers=1,
            config=MpiDConfig(sort_values=True, value_sort_key=lambda v: -v),
        )
        result = run_job(job, inputs=[5, 1, 9, 3])
        assert result.as_dict()["all"] == [9, 5, 3, 1]

    def test_key_survives_spill_fragmentation(self):
        """Tiny spills split value lists across messages; the reducer-side
        re-sort must still produce the global custom order."""
        job = MapReduceJob(
            mapper=lambda k, v, emit: emit("k", v),
            reducer=lambda k, vs, emit: emit(k, vs),
            num_mappers=2,
            num_reducers=1,
            config=MpiDConfig(
                sort_values=True,
                value_sort_key=len,
                spill_threshold=16,
                partition_bytes=64,
            ),
        )
        words = ["dddd", "a", "ccc", "bb", "eeeee"]
        result = run_job(job, inputs=words)
        assert result.as_dict()["k"] == ["a", "bb", "ccc", "dddd", "eeeee"]
