"""Iterative MapReduce tests, including PageRank vs networkx."""

import networkx as nx
import pytest

from repro.core import MapReduceJob, l1_delta_below, run_iterative_job

DAMPING = 0.85


def _counting_job():
    """A job whose output equals its input (identity), for loop tests."""
    return MapReduceJob(
        mapper=lambda k, v, emit: emit(k, v),
        reducer=lambda k, vs, emit: emit(k, vs[0]),
        num_mappers=2,
        num_reducers=1,
    )


class TestDriverLoop:
    def test_runs_max_rounds_without_predicate(self):
        out = run_iterative_job(_counting_job(), inputs=[("a", 1)], max_rounds=3)
        assert out.rounds == 3
        assert not out.converged

    def test_converges_early(self):
        # Identity job: round 2 output == round 1 output -> L1 delta 0.
        out = run_iterative_job(
            _counting_job(),
            inputs=[("a", 1.0), ("b", 2.0)],
            max_rounds=10,
            converged=l1_delta_below(1e-9),
        )
        assert out.converged
        assert out.rounds == 2

    def test_history_kept_on_request(self):
        out = run_iterative_job(
            _counting_job(), inputs=[("a", 1)], max_rounds=3, keep_history=True
        )
        assert len(out.history) == 3
        out2 = run_iterative_job(_counting_job(), inputs=[("a", 1)], max_rounds=2)
        assert out2.history == []

    def test_next_inputs_transform(self):
        doubler = MapReduceJob(
            mapper=lambda k, v, emit: emit(k, v),
            reducer=lambda k, vs, emit: emit(k, vs[0] * 2),
            num_mappers=1,
            num_reducers=1,
        )
        out = run_iterative_job(doubler, inputs=[("x", 1)], max_rounds=4)
        assert out.final.as_dict() == {"x": 16}

    def test_validation(self):
        with pytest.raises(ValueError):
            run_iterative_job(_counting_job(), inputs=[], max_rounds=0)
        with pytest.raises(ValueError):
            l1_delta_below(0)

    def test_l1_checks_key_set_changes(self):
        check = l1_delta_below(0.5)

        class Fake:
            def __init__(self, output):
                self.output = output

        # Same values but a key disappeared: its magnitude counts.
        assert not check(Fake([("a", 1.0)]), Fake([("a", 1.0), ("b", 2.0)]))
        assert check(Fake([("a", 1.0)]), Fake([("a", 1.1)]))


class TestPageRank:
    @pytest.fixture(scope="class")
    def graph(self):
        g = nx.gnp_random_graph(30, 0.15, seed=9, directed=True)
        for node in list(g.nodes):
            if g.out_degree(node) == 0:
                g.add_edge(node, (node + 1) % 30)
        return g

    def test_matches_networkx(self, graph):
        n = graph.number_of_nodes()

        def pr_map(node, state, emit):
            rank, neighbours = state
            for nbr in neighbours:
                emit(nbr, ("share", rank / len(neighbours)))
            emit(node, ("adj", neighbours))

        def pr_reduce(node, values, emit):
            incoming = sum(v for kind, v in values if kind == "share")
            neighbours = next(v for kind, v in values if kind == "adj")
            emit(node, ((1 - DAMPING) / n + DAMPING * incoming, neighbours))

        job = MapReduceJob(
            mapper=pr_map, reducer=pr_reduce, num_mappers=3, num_reducers=2
        )
        initial = [
            (node, (1.0 / n, sorted(graph.successors(node))))
            for node in graph.nodes
        ]
        out = run_iterative_job(
            job,
            inputs=initial,
            max_rounds=80,
            converged=l1_delta_below(1e-9, value_of=lambda s: s[0]),
        )
        assert out.converged
        ours = {node: s[0] for node, s in out.final.output}
        ref = nx.pagerank(graph, alpha=DAMPING, tol=1e-11)
        assert max(abs(ours[v] - ref[v]) for v in graph.nodes) < 1e-7

    def test_rank_mass_conserved(self, graph):
        """After any number of rounds, ranks sum to ~1."""
        n = graph.number_of_nodes()

        def pr_map(node, state, emit):
            rank, neighbours = state
            for nbr in neighbours:
                emit(nbr, ("share", rank / len(neighbours)))
            emit(node, ("adj", neighbours))

        def pr_reduce(node, values, emit):
            incoming = sum(v for kind, v in values if kind == "share")
            neighbours = next(v for kind, v in values if kind == "adj")
            emit(node, ((1 - DAMPING) / n + DAMPING * incoming, neighbours))

        job = MapReduceJob(
            mapper=pr_map, reducer=pr_reduce, num_mappers=2, num_reducers=2
        )
        initial = [
            (node, (1.0 / n, sorted(graph.successors(node))))
            for node in graph.nodes
        ]
        out = run_iterative_job(job, inputs=initial, max_rounds=5)
        total = sum(s[0] for _, s in out.final.output)
        assert total == pytest.approx(1.0, abs=1e-6)
