"""Property: MPI-D jobs agree with a serial reference MapReduce.

The reference implementation below is the obviously-correct semantics
(group all values by key, in emission order per mapper, then reduce).
Hypothesis drives randomized records, parallelism, and engine
configuration (spill threshold, partition size, compression) against
it — any divergence is a shuffle/combine/realign bug.
"""

from collections import defaultdict

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import MapReduceJob, MpiDConfig, run_job
from repro.core.job import _sort_token


def reference_mapreduce(records, mapper, reducer):
    """Serial ground truth with grouped-by-key semantics."""
    intermediate = defaultdict(list)

    def map_emit(k, v):
        intermediate[k].append(v)

    for k, v in records:
        mapper(k, v, map_emit)
    output = []

    def red_emit(k, v):
        output.append((k, v))

    for key in sorted(intermediate, key=_sort_token):
        reducer(key, intermediate[key], red_emit)
    return output


def sum_map(k, v, emit):
    emit(v % 7, v)


def sum_reduce(k, values, emit):
    emit(k, sum(values))


def multi_emit_map(k, v, emit):
    emit(str(v % 3), 1)
    emit(str(v % 5), 2)


def count_reduce(k, values, emit):
    emit(k, (len(values), sum(values)))


records_strategy = st.lists(
    st.tuples(st.integers(0, 50), st.integers(-1000, 1000)), max_size=60
)


class TestReferenceEquivalence:
    @settings(
        max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(records=records_strategy, m=st.integers(1, 4), r=st.integers(1, 3))
    def test_sum_job_matches_reference(self, records, m, r):
        job = MapReduceJob(
            mapper=sum_map, reducer=sum_reduce, num_mappers=m, num_reducers=r
        )
        got = run_job(job, inputs=records).output
        want = reference_mapreduce(records, sum_map, sum_reduce)
        assert got == want

    @settings(
        max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(records=records_strategy)
    def test_multi_emit_matches_reference(self, records):
        job = MapReduceJob(
            mapper=multi_emit_map,
            reducer=count_reduce,
            num_mappers=3,
            num_reducers=2,
        )
        got = run_job(job, inputs=records).output
        want = reference_mapreduce(records, multi_emit_map, count_reduce)
        assert got == want

    @settings(
        max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(
        records=records_strategy,
        spill=st.integers(32, 4096),
        partition=st.integers(64, 2048),
        compress=st.booleans(),
    )
    def test_engine_config_invariance(self, records, spill, partition, compress):
        """Spill timing, array size and compression must never change
        the answer — only the wire traffic."""
        job = MapReduceJob(
            mapper=sum_map,
            reducer=sum_reduce,
            num_mappers=3,
            num_reducers=2,
            config=MpiDConfig(
                spill_threshold=spill,
                partition_bytes=partition,
                compress=compress,
            ),
        )
        got = run_job(job, inputs=records).output
        want = reference_mapreduce(records, sum_map, sum_reduce)
        assert got == want

    @settings(
        max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(records=records_strategy)
    def test_combiner_invariance(self, records):
        """An associative combiner must not change the reduce result for
        a sum-style reducer."""
        plain = run_job(
            MapReduceJob(
                mapper=sum_map, reducer=sum_reduce, num_mappers=2, num_reducers=2
            ),
            inputs=records,
        ).output
        combined = run_job(
            MapReduceJob(
                mapper=sum_map,
                reducer=sum_reduce,
                combiner=lambda a, b: a + b,
                num_mappers=2,
                num_reducers=2,
            ),
            inputs=records,
        ).output
        assert plain == combined
